//! Deterministic virtual-time observability: structured event sinks, span
//! recording, log-scale latency histograms, and per-process time attribution.
//!
//! Everything in this module is stamped in **virtual** time (integer
//! nanoseconds, converted once from the f64 virtual clock), so the output is
//! a pure function of the simulated program and the cost model: two runs of
//! the same configuration produce byte-identical traces and histograms
//! regardless of host scheduling or `--jobs` width.  Observability here is
//! therefore itself a correctness oracle — any nondeterminism in the engine
//! shows up as a trace diff.
//!
//! The layer has three levels ([`ObsLevel`]):
//!
//! * `Off` — the per-process sink is a [`NullSink`] and every emission site
//!   is a single predictable branch; the simulation byte-stream is unchanged.
//! * `Metrics` — per-process span durations are recorded into fixed-bucket
//!   log-scale [`Histogram`]s and attributed to a [`SpanCat`] time-breakdown
//!   profile, but no event list is kept.
//! * `Trace` — additionally, every span boundary and every message
//!   send/deliver/consume plus arbiter grant is recorded as an [`Event`] for
//!   export as a Chrome-trace / Perfetto JSON file.
//!
//! Span recording never perturbs the simulation: sinks only *read* the
//! virtual clock, so enabling tracing cannot change any reported time or
//! counter (a property the test suite asserts).

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Convert a virtual-time instant in seconds to integer virtual nanoseconds.
///
/// All observability output quantises through this single function so the
/// mapping from the engine's f64 clock to trace timestamps is uniform (and
/// deterministic: `round` on a finite f64 is exact).
pub fn ns(seconds: f64) -> u64 {
    (seconds * 1e9).round() as u64
}

/// How much the engine records about a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObsLevel {
    /// No recording; emission sites reduce to one branch ([`NullSink`]).
    #[default]
    Off,
    /// Histograms and the per-process time-breakdown profile only.
    Metrics,
    /// Metrics plus the full structured event list (for trace export).
    Trace,
}

impl ObsLevel {
    /// True unless the level is [`ObsLevel::Off`].
    pub fn enabled(self) -> bool {
        self != ObsLevel::Off
    }
}

/// Number of span categories (the length of [`SpanCat::ALL`]).
pub const NCATS: usize = 7;

/// The categories virtual time is attributed to, beyond plain computation.
///
/// These are the non-compute components of the paper's time-breakdown
/// figure: a process's total execution time decomposes into compute (the
/// residual) plus the *self time* of the spans below (nested spans are
/// attributed innermost-first, so the components are disjoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanCat {
    /// Servicing an access fault on an invalid page (DSM).
    Fault,
    /// Waiting for a remote lock grant (DSM).
    LockWait,
    /// Waiting in a barrier episode (DSM).
    BarrierWait,
    /// Barrier-time garbage collection (DSM).
    Gc,
    /// Flushing diffs to their home nodes at interval close (HLRC).
    Flush,
    /// Blocked in a user-level receive (message passing).
    RecvWait,
    /// Final handshake draining requests at process exit (DSM).
    Exit,
}

impl SpanCat {
    /// Every category, in profile-report order.
    pub const ALL: [SpanCat; NCATS] = [
        SpanCat::Fault,
        SpanCat::LockWait,
        SpanCat::BarrierWait,
        SpanCat::Gc,
        SpanCat::Flush,
        SpanCat::RecvWait,
        SpanCat::Exit,
    ];

    /// Stable index of this category into `[u64; NCATS]` profile arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in traces, reports, and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            SpanCat::Fault => "fault",
            SpanCat::LockWait => "lock-wait",
            SpanCat::BarrierWait => "barrier-wait",
            SpanCat::Gc => "gc",
            SpanCat::Flush => "flush",
            SpanCat::RecvWait => "recv-wait",
            SpanCat::Exit => "exit-wait",
        }
    }
}

/// What happened at one instant of virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A [`SpanCat`] span opened; `arg` is a category-specific operand
    /// (page id for faults, lock id for lock waits, barrier epoch, ...).
    SpanBegin {
        /// Category of the opened span.
        cat: SpanCat,
        /// Category-specific operand (page, lock id, epoch, ...).
        arg: u64,
    },
    /// The innermost open span of `cat` closed.
    SpanEnd {
        /// Category of the closed span.
        cat: SpanCat,
    },
    /// A message left `rank` for the wire (timestamped at departure).
    Send {
        /// Destination rank.
        dst: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
        /// Wire datagrams after MTU fragmentation.
        datagrams: u64,
        /// Arrival instant at the destination, virtual ns.
        arrival_ns: u64,
    },
    /// `rank` consumed a queued message (timestamped at the consume instant,
    /// i.e. `max(receiver clock, arrival)`).
    Consume {
        /// Source rank of the consumed message.
        src: u32,
        /// Message tag.
        tag: u32,
        /// Arrival instant of the consumed message, virtual ns.
        arrival_ns: u64,
    },
    /// The arbiter granted `rank` the scheduling token at its parked key.
    Grant,
    /// The fault plan injected a fault into a message leaving `rank` (or,
    /// for [`FaultKind::Crash`](crate::fault::FaultKind::Crash), killed
    /// `rank` itself).
    Fault {
        /// Which fault kind fired.
        kind: crate::fault::FaultKind,
        /// Destination rank of the affected message (the crashed rank
        /// itself for crashes).
        dst: u32,
        /// Total extra arrival delay injected into the message, virtual ns.
        delay_ns: u64,
    },
}

/// One structured trace event, stamped in virtual nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual-time instant of the event, nanoseconds.
    pub t_ns: u64,
    /// Rank of the process the event belongs to.
    pub rank: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Sub-bucket resolution bits: 32 buckets per octave, ≤ 3.2 % relative error.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS; // 32

/// A deterministic fixed-layout log-linear histogram over integer virtual
/// nanoseconds (the HdrHistogram bucketing scheme, sized for the full u64
/// range).
///
/// Values below 32 ns get exact unit buckets; above that, each power-of-two
/// octave is split into 32 linear sub-buckets, so any recorded value is
/// attributed with at most 1/32 relative error.  The layout is fixed (no
/// auto-resizing, no configuration), so two histograms fed the same values
/// are structurally identical and their reports diff clean.  Storage is a
/// sparse map keyed by bucket index: only occupied buckets cost memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u16, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index of `v`: exact below 32, log-linear above.
    fn bucket_index(v: u64) -> u16 {
        if v < SUB_COUNT {
            v as u16
        } else {
            let msb = 63 - v.leading_zeros(); // >= SUB_BITS
            let octave = msb - (SUB_BITS - 1);
            let sub = (v >> (msb - SUB_BITS)) & (SUB_COUNT - 1);
            (octave as u64 * SUB_COUNT + sub) as u16
        }
    }

    /// Inclusive upper bound of bucket `idx` (the value a quantile reports).
    fn bucket_high(idx: u16) -> u64 {
        let idx = idx as u64;
        if idx < SUB_COUNT {
            idx
        } else {
            let octave = idx / SUB_COUNT;
            let sub = idx % SUB_COUNT;
            let high = ((SUB_COUNT + sub + 1) as u128) << (octave - 1);
            (high - 1).min(u64::MAX as u128) as u64
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q·count)`, clamped to the
    /// exact maximum.  Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0;
        for (&idx, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return Self::bucket_high(idx).min(self.max);
            }
        }
        self.max
    }
}

/// Where a process reports its observability output.
///
/// The engine holds one boxed sink per process; at [`ObsLevel::Off`] that is
/// the [`NullSink`], whose calls are empty inlineable bodies — the "zero
/// cost when disabled" contract.
pub trait EventSink {
    /// The level this sink records at.
    fn level(&self) -> ObsLevel;
    /// A span of `cat` opened at virtual time `t_ns` with operand `arg`.
    fn span_begin(&self, t_ns: u64, cat: SpanCat, arg: u64);
    /// The innermost open span of `cat` closed at virtual time `t_ns`.
    fn span_end(&self, t_ns: u64, cat: SpanCat);
    /// Consume the sink and return what it recorded (None for [`NullSink`]).
    fn finish(self: Box<Self>) -> Option<ProcObs>;
}

/// The disabled sink: records nothing, returns nothing.
pub struct NullSink;

impl EventSink for NullSink {
    fn level(&self) -> ObsLevel {
        ObsLevel::Off
    }
    fn span_begin(&self, _t_ns: u64, _cat: SpanCat, _arg: u64) {}
    fn span_end(&self, _t_ns: u64, _cat: SpanCat) {}
    fn finish(self: Box<Self>) -> Option<ProcObs> {
        None
    }
}

/// One open span on the recorder stack.
struct OpenSpan {
    cat: SpanCat,
    t0_ns: u64,
    /// Total duration of directly nested child spans, for self-time
    /// attribution.
    inner_ns: u64,
}

struct RecorderState {
    stack: Vec<OpenSpan>,
    self_ns: [u64; NCATS],
    hists: Vec<Histogram>,
    events: Vec<Event>,
}

/// The recording sink used at [`ObsLevel::Metrics`] and [`ObsLevel::Trace`].
///
/// Span durations are recorded **in full** (begin to end, including nested
/// spans) into the per-category histograms — a lock-acquire latency is the
/// whole wait, even if serving a fault nested inside it — while the
/// time-breakdown profile uses **self time** (duration minus nested spans),
/// so the profile components are disjoint and sum to at most the process's
/// finish time.
pub struct Recorder {
    rank: u32,
    level: ObsLevel,
    inner: RefCell<RecorderState>,
}

impl Recorder {
    /// A recorder for process `rank` at `level` (must not be `Off`).
    pub fn new(rank: u32, level: ObsLevel) -> Self {
        assert!(level.enabled(), "a Recorder needs Metrics or Trace level");
        Recorder {
            rank,
            level,
            inner: RefCell::new(RecorderState {
                stack: Vec::new(),
                self_ns: [0; NCATS],
                hists: vec![Histogram::new(); NCATS],
                events: Vec::new(),
            }),
        }
    }
}

impl EventSink for Recorder {
    fn level(&self) -> ObsLevel {
        self.level
    }

    fn span_begin(&self, t_ns: u64, cat: SpanCat, arg: u64) {
        let mut st = self.inner.borrow_mut();
        if self.level == ObsLevel::Trace {
            st.events.push(Event {
                t_ns,
                rank: self.rank,
                kind: EventKind::SpanBegin { cat, arg },
            });
        }
        st.stack.push(OpenSpan {
            cat,
            t0_ns: t_ns,
            inner_ns: 0,
        });
    }

    fn span_end(&self, t_ns: u64, cat: SpanCat) {
        let mut st = self.inner.borrow_mut();
        let open = st.stack.pop().expect("span_end without a matching begin");
        assert_eq!(open.cat, cat, "span_end category mismatch");
        let dur = t_ns.saturating_sub(open.t0_ns);
        let self_time = dur.saturating_sub(open.inner_ns);
        st.self_ns[cat.index()] += self_time;
        st.hists[cat.index()].record(dur);
        if let Some(parent) = st.stack.last_mut() {
            parent.inner_ns += dur;
        }
        if self.level == ObsLevel::Trace {
            st.events.push(Event {
                t_ns,
                rank: self.rank,
                kind: EventKind::SpanEnd { cat },
            });
        }
    }

    fn finish(self: Box<Self>) -> Option<ProcObs> {
        let st = self.inner.into_inner();
        debug_assert!(st.stack.is_empty(), "spans still open at finish");
        Some(ProcObs {
            self_ns: st.self_ns,
            hists: st.hists,
            events: st.events,
        })
    }
}

/// What one process recorded: the time-breakdown profile, the per-category
/// duration histograms, and (at [`ObsLevel::Trace`]) the span event list.
#[derive(Debug, Clone, Default)]
pub struct ProcObs {
    /// Self time attributed to each [`SpanCat`], indexed by
    /// [`SpanCat::index`], virtual ns.  Compute time is the residual:
    /// finish time minus the sum of these.
    pub self_ns: [u64; NCATS],
    /// Full-duration histogram per category (indexed by [`SpanCat::index`]).
    pub hists: Vec<Histogram>,
    /// Span boundary events, in emission (= virtual time) order; empty below
    /// [`ObsLevel::Trace`].
    pub events: Vec<Event>,
}

impl ProcObs {
    /// Number of completed spans of `cat`.
    pub fn span_count(&self, cat: SpanCat) -> u64 {
        self.hists[cat.index()].count()
    }

    /// Total self time across every category, virtual ns.
    pub fn total_attributed_ns(&self) -> u64 {
        self.self_ns.iter().sum()
    }
}

/// Everything a cluster run recorded: per-process output plus the central
/// transport/arbiter event stream (message sends, consumes, grants) in
/// deterministic grant order.
#[derive(Debug, Clone, Default)]
pub struct ClusterObs {
    /// Per-process recordings, indexed by rank.
    pub procs: Vec<ProcObs>,
    /// Transport and scheduling events recorded under the arbiter lock, in
    /// the (deterministic) order the token discipline serialised them;
    /// empty below [`ObsLevel::Trace`].
    pub central: Vec<Event>,
}

impl ClusterObs {
    /// The histogram of `cat` merged across every process.
    pub fn merged_hist(&self, cat: SpanCat) -> Histogram {
        let mut h = Histogram::new();
        for p in &self.procs {
            h.merge(&p.hists[cat.index()]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_to_nearest() {
        assert_eq!(ns(0.0), 0);
        assert_eq!(ns(1.0), 1_000_000_000);
        assert_eq!(ns(1.5e-9), 2); // round half up
        assert_eq!(ns(0.000_123_456_789), 123_457);
    }

    #[test]
    fn bucket_zero_and_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // Every value below 32 has its own bucket: quantiles are exact.
        assert_eq!(h.value_at_quantile(1.0 / 32.0), 0);
        assert_eq!(h.value_at_quantile(0.5), 15);
        assert_eq!(h.value_at_quantile(1.0), 31);
    }

    #[test]
    fn bucket_boundaries_at_the_first_octave() {
        // 31 is the last exact bucket; 32 opens the log-linear range.
        assert_eq!(Histogram::bucket_index(31), 31);
        assert_eq!(Histogram::bucket_index(32), 32);
        assert_eq!(Histogram::bucket_index(33), 33);
        assert_eq!(Histogram::bucket_index(63), 63);
        // 64 and 65 share a bucket (width 2 in the second octave).
        assert_eq!(Histogram::bucket_index(64), 64);
        assert_eq!(Histogram::bucket_index(65), 64);
        assert_eq!(Histogram::bucket_index(66), 65);
        assert_eq!(Histogram::bucket_high(64), 65);
    }

    #[test]
    fn bucket_max_value_is_representable() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.value_at_quantile(0.5), u64::MAX);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
        // The top bucket's upper bound saturates exactly at u64::MAX.
        assert_eq!(
            Histogram::bucket_high(Histogram::bucket_index(u64::MAX)),
            u64::MAX
        );
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        let mut h = Histogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 123_456_789] {
            h.record(v);
            let got = h.value_at_quantile(1.0);
            // p100 is clamped to the exact max.
            assert_eq!(got, v.max(h.max()));
        }
        // A mid quantile lands within 1/32 of the true value.
        let mut h = Histogram::new();
        h.record(999_983);
        let got = h.value_at_quantile(0.5);
        assert!(got >= 999_983);
        assert!((got as f64) <= 999_983.0 * (1.0 + 1.0 / 32.0));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 500, 50_000] {
            a.record(v);
        }
        for v in [7u64, 700, 70_000, 7_000_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.min(), 5);
        assert_eq!(merged.max(), 7_000_000);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        // Merging an empty histogram is the identity.
        let mut c = a.clone();
        c.merge(&Histogram::new());
        assert_eq!(c, a);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 37);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.value_at_quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }

    #[test]
    fn recorder_attributes_self_time_to_the_innermost_span() {
        let rec = Recorder::new(0, ObsLevel::Trace);
        // lock-wait [10, 110] containing fault [30, 80]: lock self = 50.
        rec.span_begin(10, SpanCat::LockWait, 1);
        rec.span_begin(30, SpanCat::Fault, 7);
        rec.span_end(80, SpanCat::Fault);
        rec.span_end(110, SpanCat::LockWait);
        let obs = Box::new(rec).finish().unwrap();
        assert_eq!(obs.self_ns[SpanCat::Fault.index()], 50);
        assert_eq!(obs.self_ns[SpanCat::LockWait.index()], 50);
        // Histograms record full durations.
        assert_eq!(obs.hists[SpanCat::Fault.index()].max(), 50);
        assert_eq!(obs.hists[SpanCat::LockWait.index()].max(), 100);
        assert_eq!(obs.span_count(SpanCat::LockWait), 1);
        assert_eq!(obs.events.len(), 4);
        assert_eq!(obs.total_attributed_ns(), 100);
    }

    #[test]
    fn metrics_level_records_no_events() {
        let rec = Recorder::new(3, ObsLevel::Metrics);
        rec.span_begin(0, SpanCat::BarrierWait, 0);
        rec.span_end(40, SpanCat::BarrierWait);
        let obs = Box::new(rec).finish().unwrap();
        assert!(obs.events.is_empty());
        assert_eq!(obs.span_count(SpanCat::BarrierWait), 1);
    }

    #[test]
    fn null_sink_returns_nothing() {
        let sink = NullSink;
        sink.span_begin(0, SpanCat::Fault, 0);
        sink.span_end(1, SpanCat::Fault);
        assert_eq!(sink.level(), ObsLevel::Off);
        assert!(Box::new(sink).finish().is_none());
    }
}

//! The per-process handle used by application and runtime-system code.

use crate::config::ClusterConfig;
use crate::fault::CrashPoint;
use crate::net::{CrashPayload, Message, NetworkCore, Tag};
use crate::obs::{self, EventSink, NullSink, ObsLevel, ProcObs, Recorder, SpanCat};
use crate::stats::ProcStats;
use crate::time::VirtualClock;
use bytes::Bytes;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Handle to one simulated process (workstation).
///
/// A `Proc` is owned by the thread that simulates the process and is not
/// shared across threads; all communication with other processes goes through
/// the cluster's [`NetworkCore`], whose conservative virtual-time arbiter
/// makes every interaction deterministic.
pub struct Proc {
    id: usize,
    core: Arc<NetworkCore>,
    clock: VirtualClock,
    stats: RefCell<ProcStats>,
    /// Observability sink; a [`NullSink`] when the config says `Off`, so
    /// every emission site costs one predictable branch.
    sink: Box<dyn EventSink>,
    obs_on: bool,
    /// Fault-plan crash point for this rank, if any.
    crash: Option<CrashPoint>,
    /// Transport interactions entered so far (sends and receives), counted
    /// for [`CrashPoint::Event`].
    events: Cell<u64>,
}

impl Proc {
    /// Create the handle for process `id` on the given network.
    pub fn new(id: usize, core: Arc<NetworkCore>) -> Self {
        let latency = core.config().latency;
        let level = core.config().obs;
        let stats = ProcStats {
            id,
            config_latency: latency,
            ..Default::default()
        };
        let sink: Box<dyn EventSink> = if level.enabled() {
            Box::new(Recorder::new(id as u32, level))
        } else {
            Box::new(NullSink)
        };
        let crash = core.config().fault.crash_for(id);
        Proc {
            id,
            core,
            clock: VirtualClock::new(),
            stats: RefCell::new(stats),
            sink,
            obs_on: level.enabled(),
            crash,
            events: Cell::new(0),
        }
    }

    /// Fault-plan crash hook, called on entry to every transport interaction
    /// (send or receive — the points at which a dead process would be
    /// observable to its peers).  When this rank's crash point has been
    /// reached, the process is torn down through the network core and its
    /// thread unwinds with a typed [`CrashPayload`]; it never interacts
    /// again.  A `None` crash point costs one branch.
    fn maybe_crash(&self) {
        let Some(at) = self.crash else { return };
        self.events.set(self.events.get() + 1);
        let fired = match at {
            CrashPoint::Time(t) => self.clock.now() >= t,
            CrashPoint::Event(n) => self.events.get() >= n,
        };
        if fired {
            let now = self.clock.now();
            self.core.crash(self.id, now);
            std::panic::panic_any(CrashPayload {
                rank: self.id,
                at: now,
            });
        }
    }

    /// Rank of this process, `0 .. nprocs`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processes in the cluster.
    pub fn nprocs(&self) -> usize {
        self.core.config().nprocs
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        self.core.config()
    }

    /// Current virtual time of this process, seconds.
    pub fn clock(&self) -> f64 {
        self.clock.now()
    }

    /// Charge `seconds` of local computation to this process's clock.
    pub fn compute(&self, seconds: f64) {
        self.clock.advance(seconds);
        self.stats.borrow_mut().compute_time += seconds;
    }

    /// Non-blocking send of `payload` to process `dst` with tag `tag`.
    ///
    /// The sender is charged the configured per-send CPU overhead; the
    /// message leaves at the sender's current virtual time.
    pub fn send(&self, dst: usize, tag: Tag, payload: Bytes) {
        self.maybe_crash();
        self.clock.advance(self.core.config().send_overhead);
        self.transmit(dst, tag, payload, self.clock.now());
    }

    /// Send `payload` with an explicit departure time.
    ///
    /// This models interrupt-style request service (as TreadMarks does with
    /// SIGIO): a process can answer a request at the virtual time the request
    /// arrived even if its main computation has already advanced further.
    /// The send is accounted to this process's statistics, and the per-send
    /// CPU overhead is charged to its clock as "stolen cycles" — the handler
    /// still costs real processor time, whenever it notionally ran.
    pub fn send_at(&self, dst: usize, tag: Tag, payload: Bytes, depart: f64) {
        self.maybe_crash();
        self.clock.advance(self.core.config().send_overhead);
        self.transmit(dst, tag, payload, depart);
    }

    fn transmit(&self, dst: usize, tag: Tag, payload: Bytes, depart: f64) {
        let bytes = payload.len() as u64;
        let datagrams = self
            .core
            .transmit(self.id, dst, tag, payload, depart, self.clock.now());
        let mut st = self.stats.borrow_mut();
        st.messages_sent += 1;
        st.datagrams_sent += datagrams;
        st.bytes_sent += bytes;
    }

    /// Blocking receive of a message matching `src` (any source if `None`)
    /// and `tag` (any tag if `None`).  The caller's clock is synchronised to
    /// the arrival time of the message and charged the per-receive overhead.
    pub fn recv_match(&self, src: Option<usize>, tag: Option<Tag>) -> Message {
        self.maybe_crash();
        let m = self.core.recv_match(self.id, src, tag, self.clock.now());
        self.consume(&m);
        m
    }

    /// Blocking receive of a message matching `src` (any source if `None`)
    /// and exactly `tag`.
    pub fn recv(&self, src: Option<usize>, tag: Tag) -> Message {
        self.recv_match(src, Some(tag))
    }

    /// Blocking receive of *any* message addressed to this process.
    ///
    /// Runtime systems use this in their service loops: wait for whatever
    /// comes next (a request to serve or the reply being waited for).
    pub fn recv_any(&self) -> Message {
        self.recv_match(None, None)
    }

    /// Non-blocking receive; returns `None` if no matching message has
    /// *arrived* by this process's current virtual time.  A message whose
    /// arrival lies in the caller's virtual future is invisible — consuming
    /// it here would let a process react to a message "before" it arrived.
    /// Does not advance the clock when nothing is available.
    pub fn try_recv(&self, src: Option<usize>, tag: Tag) -> Option<Message> {
        self.maybe_crash();
        let m = self
            .core
            .try_recv_match(self.id, src, Some(tag), self.clock.now())?;
        self.consume(&m);
        Some(m)
    }

    /// Non-blocking receive of any queued message that has arrived by this
    /// process's current virtual time, consumed interrupt-style: the
    /// per-receive CPU overhead is charged to this process as stolen cycles,
    /// but the clock is *not* synchronised to the message's arrival time —
    /// the caller is busy computing, not idle-waiting.  Runtime systems use
    /// this to serve protocol requests at points where they are not blocked
    /// (the SIGIO delivery of the real system).
    pub fn try_recv_interrupt(&self) -> Option<Message> {
        self.maybe_crash();
        let m = self
            .core
            .try_recv_match(self.id, None, None, self.clock.now())?;
        self.clock.advance(self.core.config().recv_overhead);
        let mut st = self.stats.borrow_mut();
        st.messages_received += 1;
        st.datagrams_received += m.datagrams;
        st.bytes_received += m.payload.len() as u64;
        Some(m)
    }

    /// Number of messages queued for this process that have arrived by its
    /// current virtual time.
    pub fn pending(&self) -> usize {
        self.core.pending(self.id, self.clock.now())
    }

    /// The observability level this process records at.
    pub fn obs_level(&self) -> ObsLevel {
        self.sink.level()
    }

    /// Open an observability span of `cat` at this process's current virtual
    /// time.  `arg` is a category-specific operand (page id, lock id, epoch).
    /// A no-op when observability is off.  Spans nest; every `span_begin`
    /// must be matched by a [`span_end`](Self::span_end) of the same
    /// category before the process finishes.
    pub fn span_begin(&self, cat: SpanCat, arg: u64) {
        if self.obs_on {
            self.sink.span_begin(obs::ns(self.clock.now()), cat, arg);
        }
    }

    /// Close the innermost open span of `cat` at the current virtual time.
    /// A no-op when observability is off.
    pub fn span_end(&self, cat: SpanCat) {
        if self.obs_on {
            self.sink.span_end(obs::ns(self.clock.now()), cat);
        }
    }

    /// Take this process's recorded observability output (None when the
    /// level is `Off`).  Called once, after the process closure returns and
    /// before [`into_stats`](Self::into_stats); the sink is replaced by a
    /// [`NullSink`].
    pub fn take_obs(&mut self) -> Option<ProcObs> {
        std::mem::replace(&mut self.sink, Box::new(NullSink)).finish()
    }

    /// Finalise and return the statistics of this process, handing the
    /// scheduling token back to the cluster.
    pub fn into_stats(self) -> ProcStats {
        self.core.finish(self.id);
        let mut st = self.stats.into_inner();
        st.finish_time = self.clock.now();
        st
    }

    /// A snapshot of the statistics so far (finish time not yet set).
    pub fn stats_snapshot(&self) -> ProcStats {
        let mut st = self.stats.borrow().clone();
        st.finish_time = self.clock.now();
        st
    }

    fn consume(&self, m: &Message) {
        let idle = self.clock.sync_to(m.arrival);
        self.clock.advance(self.core.config().recv_overhead);
        let mut st = self.stats.borrow_mut();
        st.idle_time += idle;
        st.messages_received += 1;
        st.datagrams_received += m.datagrams;
        st.bytes_received += m.payload.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};

    #[test]
    fn compute_is_accounted() {
        let rep = Cluster::run(ClusterConfig::ideal(1), |p| {
            p.compute(0.25);
            p.compute(0.75);
        });
        assert!((rep.stats[0].compute_time - 1.0).abs() < 1e-12);
        assert!((rep.stats[0].finish_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recv_waits_for_sender_virtual_time() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.compute(1.0); // sender is busy for a full virtual second
                p.send(1, 0, Bytes::from_static(b"x"));
            } else {
                let m = p.recv(Some(0), 0);
                assert!(m.arrival > 1.0);
            }
            p.clock()
        });
        // The receiver did no computation but must still finish after t=1s.
        assert!(rep.results[1] > 1.0);
        assert!(rep.stats[1].idle_time > 0.9);
    }

    #[test]
    fn send_at_allows_interrupt_style_replies() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                // Request arrives early ...
                p.send(1, 1, Bytes::from_static(b"req"));
                let reply = p.recv(Some(1), 2);
                reply.arrival
            } else {
                p.compute(5.0); // ... while the server is busy computing.
                let req = p.recv(Some(0), 1);
                // Serve it at its arrival time, not at our current clock.
                p.send_at(0, 2, Bytes::from_static(b"rsp"), req.arrival + 0.0001);
                0.0
            }
        });
        // The reply must NOT be delayed by the server's 5 s of computation.
        assert!(rep.results[0] < 1.0, "reply arrival {}", rep.results[0]);
    }

    #[test]
    fn send_at_charges_stolen_cycles_to_the_server_clock() {
        // A server that computes for exactly 1 s and serves `replies`
        // interrupt-style sends must finish at
        // 1 s + recv_overhead (for its one blocking receive)
        // + replies * send_overhead (the stolen cycles) exactly.
        let replies = 3usize;
        let cfg = ClusterConfig::calibrated_fddi(2);
        let (send_oh, recv_oh) = (cfg.send_overhead, cfg.recv_overhead);
        let rep = Cluster::run(cfg, move |p| {
            if p.id() == 0 {
                p.send(1, 1, Bytes::from_static(b"req"));
                for k in 0..replies as u32 {
                    p.recv(Some(1), 10 + k);
                }
            } else {
                p.compute(1.0);
                let req = p.recv(Some(0), 1);
                for k in 0..replies as u32 {
                    p.send_at(0, 10 + k, Bytes::from_static(b"rsp"), req.arrival + 1e-6);
                }
            }
        });
        let expect = 1.0 + recv_oh + replies as f64 * send_oh;
        let got = rep.stats[1].finish_time;
        assert!(
            (got - expect).abs() < 1e-12,
            "server finished at {got}, expected {expect}"
        );
    }

    #[test]
    fn try_recv_does_not_block() {
        let rep = Cluster::run(ClusterConfig::ideal(1), |p| p.try_recv(None, 0).is_none());
        assert!(rep.results[0]);
    }

    #[test]
    fn try_recv_cannot_see_the_virtual_future() {
        // The message arrives at ~latency; a receiver whose clock is still 0
        // must not observe it, let alone consume it.  After advancing its
        // clock past the arrival, the same receive succeeds.
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(1, 4, Bytes::from_static(b"later"));
                true
            } else {
                // Give the sender time to transmit in virtual-time order:
                // block for the *other* tag first?  No — simply observe at
                // clock 0 (the send departs at t>0, so nothing can have
                // arrived), then advance far past the arrival and re-check.
                let early = p.try_recv(Some(0), 4);
                assert!(early.is_none(), "consumed a message from the future");
                assert_eq!(p.pending(), 0, "future message visible in pending()");
                p.compute(1.0);
                let late = p.try_recv(Some(0), 4);
                late.is_some()
            }
        });
        assert!(rep.results[1]);
    }

    #[test]
    fn stats_count_both_directions() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(1, 0, Bytes::from(vec![0u8; 1000]));
            } else {
                p.recv(Some(0), 0);
            }
        });
        assert_eq!(rep.stats[0].messages_sent, 1);
        assert_eq!(rep.stats[0].bytes_sent, 1000);
        assert_eq!(rep.stats[1].messages_received, 1);
        assert_eq!(rep.stats[1].bytes_received, 1000);
    }

    #[test]
    fn datagrams_are_counted_on_both_sides() {
        // 20 KB at the calibrated 8 KB MTU is 3 datagrams; the receive side
        // must agree with the send side so Table-2 counts can be
        // cross-checked.
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(1, 0, Bytes::from(vec![0u8; 20_000]));
            } else {
                p.recv(Some(0), 0);
            }
        });
        assert_eq!(rep.stats[0].datagrams_sent, 3);
        assert_eq!(rep.stats[1].datagrams_received, 3);
        assert_eq!(rep.stats[0].datagrams_received, 0);
        assert_eq!(rep.stats[1].datagrams_sent, 0);
        assert_eq!(
            rep.stats.iter().map(|s| s.datagrams_sent).sum::<u64>(),
            rep.stats.iter().map(|s| s.datagrams_received).sum::<u64>(),
        );
    }
}

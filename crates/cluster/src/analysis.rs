//! Run-time analysis levels.
//!
//! Like the observability layer ([`crate::obs`]), analysis lives **outside
//! the cost model**: enabling an analysis must never change any virtual
//! time, message count or checksum a run reports.  The analyses themselves
//! live with the runtime they instrument (the happens-before race detector
//! rides the DSM runtime in the `treadmarks` crate); this module only
//! defines the switch that [`crate::ClusterConfig`] carries so every layer
//! between the CLI and the runtime can plumb it without new parameters.

use serde::{Deserialize, Serialize};

/// How much run-time analysis a run performs.
///
/// Carried on [`crate::ClusterConfig`] next to [`crate::ObsLevel`] and, like
/// it, **not** part of the communication cost model: with any level the
/// simulated virtual times, message counts and checksums are bit-identical
/// to [`AnalysisLevel::Off`].  Analyses only *observe* the run and append
/// their findings to the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalysisLevel {
    /// No analysis (the default): zero overhead, nothing recorded.
    #[default]
    Off,
    /// Happens-before data-race detection: the DSM runtime records every
    /// shared read/write with its analysis vector clock and a post-mortem
    /// pass flags conflicting access pairs not ordered by happens-before.
    Race,
}

impl AnalysisLevel {
    /// Whether any analysis is recording at this level.
    pub fn enabled(self) -> bool {
        self != AnalysisLevel::Off
    }
}

impl std::fmt::Display for AnalysisLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisLevel::Off => write!(f, "off"),
            AnalysisLevel::Race => write!(f, "race"),
        }
    }
}

impl std::str::FromStr for AnalysisLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(AnalysisLevel::Off),
            "race" => Ok(AnalysisLevel::Race),
            other => Err(format!("unknown analysis level `{other}` (off|race)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert_eq!(AnalysisLevel::default(), AnalysisLevel::Off);
        assert!(!AnalysisLevel::Off.enabled());
        assert!(AnalysisLevel::Race.enabled());
    }

    #[test]
    fn round_trips_through_str() {
        for lvl in [AnalysisLevel::Off, AnalysisLevel::Race] {
            let s = lvl.to_string();
            assert_eq!(s.parse::<AnalysisLevel>().unwrap(), lvl);
        }
        assert!("racy".parse::<AnalysisLevel>().is_err());
    }
}

//! Per-process and cluster-wide communication statistics.
//!
//! The paper's Table 2 reports, for the 8-processor execution of each
//! application, the number of messages and the amount of data sent under
//! each system.  For PVM the paper counts user-level messages and user data;
//! for TreadMarks it counts UDP messages and total data.  The transport layer
//! of this crate therefore counts *datagrams* and payload bytes (what
//! TreadMarks reports); the `msgpass` crate additionally counts user-level
//! sends (what PVM reports).

use crate::fault::FaultStats;
use crate::obs::ClusterObs;
use serde::{Deserialize, Serialize};

/// Communication and timing statistics of a single simulated process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcStats {
    /// Process rank.
    pub id: usize,
    /// Virtual time (seconds) at which the process finished its closure.
    pub finish_time: f64,
    /// Total virtual time spent in [`crate::Proc::compute`].
    pub compute_time: f64,
    /// Total virtual time spent idle-waiting for messages.
    pub idle_time: f64,
    /// Logical messages sent (one per `send` call).
    pub messages_sent: u64,
    /// Transport datagrams sent (after MTU fragmentation).
    pub datagrams_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Logical messages received.
    pub messages_received: u64,
    /// Transport datagrams received (after MTU fragmentation).  Cluster-wide
    /// this must equal the sum of `datagrams_sent` for messages that were
    /// consumed, so Table-2 datagram counts can be cross-checked on the
    /// receive side.
    pub datagrams_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// The configured per-message latency, recorded for test introspection.
    pub config_latency: f64,
}

/// The result of running a closure on every process of a cluster.
#[derive(Debug)]
pub struct ClusterReport<R> {
    /// Per-process return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-process statistics, indexed by rank.
    pub stats: Vec<ProcStats>,
    /// Observability output of the run; `None` when the configuration's
    /// [`obs`](crate::ClusterConfig::obs) level is `Off`.
    pub obs: Option<ClusterObs>,
    /// Counters of the faults the run's [`crate::fault::FaultPlan`] actually
    /// injected, plus seeded arbiter tie-breaks.  All zero for an empty plan
    /// under schedule seed 0.
    pub faults: FaultStats,
}

impl<R> ClusterReport<R> {
    /// The parallel execution time: the latest finish time over all processes.
    pub fn parallel_time(&self) -> f64 {
        self.stats.iter().map(|s| s.finish_time).fold(0.0, f64::max)
    }

    /// Total logical messages sent across all processes.
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages_sent).sum()
    }

    /// Total transport datagrams sent across all processes.
    pub fn total_datagrams(&self) -> u64 {
        self.stats.iter().map(|s| s.datagrams_sent).sum()
    }

    /// Total payload bytes sent across all processes.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total payload kilobytes sent across all processes (Table 2 units).
    pub fn total_kilobytes(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(finish: f64, msgs: u64, bytes: u64) -> ProcStats {
        ProcStats {
            finish_time: finish,
            messages_sent: msgs,
            datagrams_sent: msgs,
            bytes_sent: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn report_aggregates() {
        let rep = ClusterReport {
            results: vec![(), (), ()],
            stats: vec![mk(1.0, 2, 100), mk(3.5, 4, 50), mk(2.0, 0, 0)],
            obs: None,
            faults: FaultStats::default(),
        };
        assert_eq!(rep.parallel_time(), 3.5);
        assert_eq!(rep.total_messages(), 6);
        assert_eq!(rep.total_bytes(), 150);
        assert!((rep.total_kilobytes() - 150.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let rep: ClusterReport<()> = ClusterReport {
            results: vec![],
            stats: vec![],
            obs: None,
            faults: FaultStats::default(),
        };
        assert_eq!(rep.parallel_time(), 0.0);
        assert_eq!(rep.total_messages(), 0);
    }
}

//! Deterministic fault injection: seeded message-level faults, timed link
//! partitions, process crashes, and the splittable PRNG behind them.
//!
//! The paper's runtime systems (TreadMarks over user-level reliable UDP, PVM
//! over TCP) both sit on a *reliable* transport: datagram loss, duplication
//! and reordering are absorbed by retransmission and resequencing below the
//! protocol, surfacing to the runtime only as extra delay and extra wire
//! traffic.  This module models exactly that contract:
//!
//! * **drop** — the message's datagrams are lost once on the wire and
//!   retransmitted after [`FaultPlan::retransmit`]; the arrival is delayed by
//!   the timeout and the retransmitted datagrams are charged to the cost
//!   model (sender and receiver datagram counters, and the shared medium when
//!   the preset has one).
//! * **duplicate** — the wire carries a second copy of every datagram; the
//!   copy is suppressed by the reliability layer (delivered once) but its
//!   occupancy and datagram count are charged.
//! * **delay** — the message is held in a queue somewhere for an extra
//!   `delay_factor × latency × u` seconds (`u ∈ (0, 1]` seeded).
//! * **reorder** — delivery slips behind the most recently queued message
//!   from a *different* source (per-link FIFO is preserved — the reliability
//!   layer resequences each link), so wildcard receivers service requests in
//!   a different order.
//! * **partition** — messages crossing an active [`Partition`] window cannot
//!   be delivered before the partition heals: the reliability layer keeps
//!   retransmitting (one retry per [`FaultPlan::retransmit`] interval is
//!   charged) and the message arrives after the heal instant.
//! * **crash** — the named process dies at a virtual time or at its nth
//!   transport event ([`Crash`]); peers blocked on it are reported as a
//!   structured deadlock naming the crashed rank (see `Cluster::try_run`).
//!
//! Every seeded decision draws from [`SplitMix64`] streams split per link
//! from [`FaultPlan::seed`], and all draws happen under the simulation lock
//! at deterministic points of the token discipline — so `(scenario, seed)`
//! determines the run bit-for-bit, independent of `--jobs` width or host
//! scheduling.  This module is the **only** place in the workspace allowed
//! to construct the PRNG (enforced by `xtask lint`).

use serde::{Deserialize, Serialize};

/// The workspace's one and only pseudo-random number generator: the
/// SplitMix64 sequence of Steele, Lea & Flood, chosen because it is tiny,
/// splittable (independent streams from `split`), and has a closed-form
/// n-th element — every fault decision is a pure function of `(seed, link,
/// counter)`.
///
/// Deliberately *not* `rand`-compatible: determinism of the simulation
/// requires that all randomness flows through seeded streams owned by this
/// module, which the `xtask lint` prng-confinement rule enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the SplitMix64 sequence.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// A stream seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        Self::mix(self.state)
    }

    /// Next value in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An independent stream derived from this one and a stream id: the
    /// "split" operation that makes per-link fault streams independent of
    /// how many draws other links have consumed.
    pub fn split(&self, stream: u64) -> SplitMix64 {
        SplitMix64 {
            state: Self::mix(self.state ^ Self::mix(stream.wrapping_mul(Self::GAMMA))),
        }
    }

    /// The finaliser of the SplitMix64 sequence (Stafford's Mix13 variant).
    fn mix(mut z: u64) -> u64 {
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A timed link partition: while `from <= t < until`, no message can cross
/// between group `a` and group `b` (in either direction); the partition
/// heals at virtual time `until`.
///
/// The canonical text form is `"0,1|2,3@0.005..0.02"`: the two groups,
/// separated by `|`, then `@from..until` in seconds (shortest round-trip
/// float form, so formatting then parsing is the identity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Ranks on one side of the cut.
    pub a: Vec<usize>,
    /// Ranks on the other side.
    pub b: Vec<usize>,
    /// Virtual time at which the partition starts, seconds.
    pub from: f64,
    /// Virtual time at which the partition heals, seconds.
    pub until: f64,
}

impl Partition {
    /// True if a message departing at `t` from `src` to `dst` crosses the
    /// active partition.
    pub fn blocks(&self, src: usize, dst: usize, t: f64) -> bool {
        if t < self.from || t >= self.until {
            return false;
        }
        let (in_a, in_b) = (self.a.contains(&src), self.b.contains(&src));
        let (out_a, out_b) = (self.a.contains(&dst), self.b.contains(&dst));
        (in_a && out_b) || (in_b && out_a)
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let join = |v: &[usize]| {
            v.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "{}|{}@{}..{}",
            join(&self.a),
            join(&self.b),
            self.from,
            self.until
        )
    }
}

impl std::str::FromStr for Partition {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("bad partition spec '{s}'; expected 'a,b|c,d@from..until'");
        let (groups, window) = s.split_once('@').ok_or_else(err)?;
        let (a, b) = groups.split_once('|').ok_or_else(err)?;
        let ranks = |g: &str| -> Result<Vec<usize>, String> {
            g.split(',')
                .map(|r| r.trim().parse::<usize>().map_err(|_| err()))
                .collect()
        };
        let (from, until) = window.split_once("..").ok_or_else(err)?;
        let parsed = Partition {
            a: ranks(a)?,
            b: ranks(b)?,
            from: from.trim().parse().map_err(|_| err())?,
            until: until.trim().parse().map_err(|_| err())?,
        };
        // `Less` required, not `>=` refused: a NaN endpoint must also fail.
        let ordered = parsed.from.partial_cmp(&parsed.until) == Some(std::cmp::Ordering::Less);
        if parsed.a.is_empty() || parsed.b.is_empty() || !ordered {
            return Err(err());
        }
        Ok(parsed)
    }
}

/// When a [`Crash`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CrashPoint {
    /// At the first interaction at or after this virtual time, seconds.
    Time(f64),
    /// At the process's nth transport event (send or receive), counting
    /// from 1.
    Event(u64),
}

/// A process-crash fault: the process dies (its thread unwinds, its state
/// vanishes) at the given point; it never sends again and never answers.
///
/// The canonical text form is `"2@0.0015"` (rank 2 at t = 1.5 ms) or
/// `"2#120"` (rank 2 at its 120th transport event).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// Rank of the process to crash.
    pub rank: usize,
    /// When the crash fires.
    pub at: CrashPoint,
}

impl std::fmt::Display for Crash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.at {
            CrashPoint::Time(t) => write!(f, "{}@{}", self.rank, t),
            CrashPoint::Event(n) => write!(f, "{}#{}", self.rank, n),
        }
    }
}

impl std::str::FromStr for Crash {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("bad crash spec '{s}'; expected 'rank@time' or 'rank#event'");
        if let Some((rank, t)) = s.split_once('@') {
            Ok(Crash {
                rank: rank.trim().parse().map_err(|_| err())?,
                at: CrashPoint::Time(t.trim().parse().map_err(|_| err())?),
            })
        } else if let Some((rank, n)) = s.split_once('#') {
            Ok(Crash {
                rank: rank.trim().parse().map_err(|_| err())?,
                at: CrashPoint::Event(n.trim().parse().map_err(|_| err())?),
            })
        } else {
            Err(err())
        }
    }
}

/// A deterministic fault-injection plan, carried on `ClusterConfig` and in
/// the scenario schema (`[fault]` table).
///
/// The default plan is inert ([`FaultPlan::is_empty`]) and adds zero cost:
/// the transport checks one cached flag per message.  Probabilities are per
/// logical message, evaluated on an independent seeded stream per directed
/// link, so the outcome of one link's draws never depends on another link's
/// traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed for the per-link fault streams.
    pub seed: u64,
    /// Per-message probability that the wire drops the datagrams once
    /// (retransmitted after [`retransmit`](Self::retransmit)).
    pub drop: f64,
    /// Per-message probability that the wire carries a duplicate copy
    /// (suppressed on delivery, charged on the wire).
    pub duplicate: f64,
    /// Per-message probability of delivery slipping behind the previously
    /// queued message from a different source.
    pub reorder: f64,
    /// Per-message probability of extra queueing delay.
    pub delay: f64,
    /// Scale of the extra delay: `delay_factor × latency × u`, `u ∈ (0, 1]`.
    pub delay_factor: f64,
    /// Reliability-layer retransmission timeout, seconds.
    pub retransmit: f64,
    /// Timed link partitions.
    pub partitions: Vec<Partition>,
    /// Process crashes.
    pub crashes: Vec<Crash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: 0.0,
            delay_factor: 4.0,
            retransmit: 2e-3,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A moderately lossy built-in plan (the `--faults lossy` battery): a
    /// few percent of messages dropped-and-retransmitted, duplicated,
    /// delayed or reordered.  Correctness must survive it — only timing and
    /// wire counters change.
    pub fn lossy(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.02,
            duplicate: 0.01,
            reorder: 0.02,
            delay: 0.02,
            ..FaultPlan::default()
        }
    }

    /// A built-in plan (the `--faults partition` battery) that cuts the even
    /// ranks off from the odd ranks for a window in the early part of a
    /// Tiny-preset run, healing at 4 ms virtual.
    pub fn partitioned(seed: u64, nprocs: usize) -> Self {
        let a: Vec<usize> = (0..nprocs).filter(|r| r % 2 == 0).collect();
        let b: Vec<usize> = (0..nprocs).filter(|r| r % 2 == 1).collect();
        let partitions = if a.is_empty() || b.is_empty() {
            Vec::new()
        } else {
            vec![Partition {
                a,
                b,
                from: 1e-3,
                until: 4e-3,
            }]
        };
        FaultPlan {
            seed,
            partitions,
            ..FaultPlan::default()
        }
    }

    /// True if the plan can never inject anything: all probabilities zero
    /// and no partitions or crashes.  The transport skips the fault path
    /// entirely for empty plans, so the pre-fault byte stream is preserved
    /// exactly.
    pub fn is_empty(&self) -> bool {
        let FaultPlan {
            seed: _,
            drop,
            duplicate,
            reorder,
            delay,
            delay_factor: _,
            retransmit: _,
            partitions,
            crashes,
        } = self;
        *drop == 0.0
            && *duplicate == 0.0
            && *reorder == 0.0
            && *delay == 0.0
            && partitions.is_empty()
            && crashes.is_empty()
    }

    /// The same plan reseeded for fuzzing iteration `seed` (the master seed
    /// and the iteration are split into an independent stream seed).
    pub fn for_seed(&self, seed: u64) -> Self {
        let mut plan = self.clone();
        plan.seed = SplitMix64::seeded(self.seed).split(seed).state;
        plan
    }

    /// The crash point configured for `rank`, if any (first matching spec).
    pub fn crash_for(&self, rank: usize) -> Option<CrashPoint> {
        self.crashes.iter().find(|c| c.rank == rank).map(|c| c.at)
    }

    /// A stable 64-bit identity of the plan (FNV-1a over the canonical
    /// encoding, floats by bit pattern).  `0` for the empty default plan, so
    /// un-fuzzed JSON records stay byte-identical to pre-fault output.
    pub fn hash(&self) -> u64 {
        if self.is_empty() && self.seed == 0 {
            return 0;
        }
        let FaultPlan {
            seed,
            drop,
            duplicate,
            reorder,
            delay,
            delay_factor,
            retransmit,
            partitions,
            crashes,
        } = self;
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(*seed);
        for f in [drop, duplicate, reorder, delay, delay_factor, retransmit] {
            eat(f.to_bits());
        }
        for p in partitions {
            for r in p.a.iter().chain(&p.b) {
                eat(*r as u64);
            }
            eat(u64::MAX); // group separator
            eat(p.from.to_bits());
            eat(p.until.to_bits());
        }
        for c in crashes {
            eat(c.rank as u64);
            match c.at {
                CrashPoint::Time(t) => eat(t.to_bits()),
                CrashPoint::Event(n) => {
                    eat(u64::MAX);
                    eat(n);
                }
            }
        }
        h
    }

    /// The catalogue of fault kinds this plan schema supports, with one-line
    /// descriptions (rendered by `reproduce --list`).
    pub fn kinds() -> &'static [(&'static str, &'static str)] {
        &[
            (
                "drop",
                "datagrams lost once on the wire; retransmitted after the timeout, delay and extra datagrams charged",
            ),
            (
                "duplicate",
                "wire carries a second copy; suppressed on delivery, occupancy and datagrams charged",
            ),
            (
                "reorder",
                "delivery slips behind the previously queued message from another source (per-link FIFO preserved)",
            ),
            (
                "delay",
                "extra queueing delay of delay_factor x latency x u seconds",
            ),
            (
                "partition",
                "timed link partition 'a|b@from..until'; crossing messages retransmit until the heal instant",
            ),
            (
                "crash",
                "process death at 'rank@time' or 'rank#event'; peers report a structured deadlock naming it",
            ),
        ]
    }
}

/// What kind of fault an injection event records (trace stream and
/// counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Datagrams dropped once and retransmitted.
    Drop,
    /// A duplicate copy charged on the wire.
    Duplicate,
    /// Delivery slipped behind another source's message.
    Reorder,
    /// Extra seeded queueing delay.
    Delay,
    /// Delivery deferred past a partition heal.
    Partition,
    /// A process crash fired.
    Crash,
}

impl FaultKind {
    /// Stable lowercase name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
            FaultKind::Partition => "partition",
            FaultKind::Crash => "crash",
        }
    }
}

/// Counters of the faults a run actually injected, reported on the cluster
/// report (all zero when the plan is empty).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages whose datagrams were dropped and retransmitted.
    pub drops: u64,
    /// Messages duplicated on the wire.
    pub duplicates: u64,
    /// Messages delivered behind another source's message.
    pub reorders: u64,
    /// Messages given extra seeded delay.
    pub delays: u64,
    /// Messages deferred by an active partition.
    pub partition_hits: u64,
    /// Processes that crashed.
    pub crashes: u64,
    /// Arbiter ties broken by the seeded stream (0 under seed 0).
    pub tie_breaks: u64,
}

impl FaultStats {
    /// Total injected message-level faults (crashes and tie-breaks not
    /// included).
    pub fn injected(&self) -> u64 {
        self.drops + self.duplicates + self.reorders + self.delays + self.partition_hits
    }

    /// Fold another counter set into this one.  The windowed engine keeps
    /// one fault-state clone per island and sums the counters for the
    /// report; because each directed link is only ever drawn by its source
    /// rank's island, the sums equal the serial engine's counters exactly.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.delays += other.delays;
        self.partition_hits += other.partition_hits;
        self.crashes += other.crashes;
        self.tie_breaks += other.tie_breaks;
    }
}

/// The arbiter's seeded tie-break stream: when several processes are parked
/// at exactly the same minimum virtual time, a seeded draw picks the grant
/// instead of the lowest rank, so one scenario explores many legal
/// schedules.  Seed 0 never draws and always picks the lowest rank — the
/// pre-fault engine, bit for bit.
///
/// Lives in this module (not `sched`) so the PRNG stays confined to
/// `cluster::fault`, as the `xtask lint` prng-confinement rule requires.
#[derive(Debug)]
pub(crate) struct TieBreak {
    rng: SplitMix64,
    seeded: bool,
    /// After this many draws, fall back to rank order (`None` = unlimited);
    /// the shrinker bisects this to find the minimal seeded prefix.
    limit: Option<u64>,
    draws: u64,
}

impl TieBreak {
    /// A stream for `seed` with an optional draw cap.
    pub(crate) fn new(seed: u64, limit: Option<u64>) -> Self {
        TieBreak {
            rng: SplitMix64::seeded(seed).split(u64::from_le_bytes(*b"tiebreak")),
            seeded: seed != 0,
            limit,
            draws: 0,
        }
    }

    /// True if ties are broken by draws rather than by rank.
    pub(crate) fn seeded(&self) -> bool {
        self.seeded
    }

    /// Draws consumed so far (reported as [`FaultStats::tie_breaks`]).
    pub(crate) fn draws(&self) -> u64 {
        self.draws
    }

    /// Pick one of the tied candidate ranks (callers pass them sorted
    /// ascending, so rank order is the deterministic fallback).
    pub(crate) fn pick(&mut self, candidates: &[usize]) -> usize {
        debug_assert!(!candidates.is_empty());
        if candidates.len() == 1 || !self.seeded || self.limit.is_some_and(|cap| self.draws >= cap)
        {
            return candidates[0];
        }
        self.draws += 1;
        candidates[(self.rng.next_u64() % candidates.len() as u64) as usize]
    }
}

/// What the transport should do to one message, as decided by
/// [`FaultState::on_transmit`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Injection {
    /// Extra arrival delay, seconds.
    pub extra_delay: f64,
    /// Extra wire datagrams (retransmissions and duplicates).
    pub extra_datagrams: u64,
    /// Extra wire occupancy to charge the shared medium, seconds.
    pub extra_occupancy: f64,
    /// Insert the message one slot before the queue tail (behind-slip).
    pub reorder: bool,
    /// Which kinds fired, for the trace stream (at most 5).
    pub kinds: [Option<FaultKind>; 5],
}

impl Injection {
    fn record(&mut self, kind: FaultKind) {
        if let Some(slot) = self.kinds.iter_mut().find(|k| k.is_none()) {
            *slot = Some(kind);
        }
    }
}

/// Runtime fault state, owned by the transport under the simulation lock:
/// the plan, one PRNG stream and message counter per directed link, and the
/// injection counters.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    nprocs: usize,
    /// Per-directed-link streams, indexed `src * nprocs + dst`.
    links: Vec<SplitMix64>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// Build the runtime state for `nprocs` processes, or `None` for an
    /// empty plan (the transport then skips the fault path entirely).
    pub(crate) fn new(plan: &FaultPlan, nprocs: usize) -> Option<Self> {
        if plan.is_empty() {
            return None;
        }
        let root = SplitMix64::seeded(plan.seed);
        Some(FaultState {
            plan: plan.clone(),
            nprocs,
            links: (0..nprocs * nprocs)
                .map(|link| root.split(link as u64))
                .collect(),
            stats: FaultStats::default(),
        })
    }

    /// Decide the faults for one message on link `src → dst` departing at
    /// `depart` with `datagrams` datagrams of `occupancy` seconds wire time.
    /// Exactly four draws are consumed per message (one per probabilistic
    /// kind), so the stream position is a pure function of the link's
    /// message count.
    pub(crate) fn on_transmit(
        &mut self,
        src: usize,
        dst: usize,
        depart: f64,
        datagrams: u64,
        occupancy: f64,
        latency: f64,
    ) -> Injection {
        let rng = &mut self.links[src * self.nprocs + dst];
        let mut inj = Injection::default();
        let (u_drop, u_dup, u_delay, u_reorder) = (
            rng.next_f64(),
            rng.next_f64(),
            rng.next_f64(),
            rng.next_f64(),
        );
        // Partition first: it dominates (the message cannot cross until the
        // heal), and is a pure function of the departure time.
        if let Some(p) = self
            .plan
            .partitions
            .iter()
            .find(|p| p.blocks(src, dst, depart))
        {
            let wait = p.until - depart;
            let retries = (wait / self.plan.retransmit).ceil().max(1.0);
            inj.extra_delay += wait;
            inj.extra_datagrams += retries as u64 * datagrams;
            inj.extra_occupancy += retries * occupancy;
            inj.record(FaultKind::Partition);
            self.stats.partition_hits += 1;
        }
        if u_drop < self.plan.drop {
            inj.extra_delay += self.plan.retransmit;
            inj.extra_datagrams += datagrams;
            inj.extra_occupancy += occupancy;
            inj.record(FaultKind::Drop);
            self.stats.drops += 1;
        }
        if u_dup < self.plan.duplicate {
            inj.extra_datagrams += datagrams;
            inj.extra_occupancy += occupancy;
            inj.record(FaultKind::Duplicate);
            self.stats.duplicates += 1;
        }
        if u_delay < self.plan.delay {
            // `1 - u` maps the draw to (0, 1] so the delay is never zero.
            inj.extra_delay += self.plan.delay_factor * latency * (1.0 - u_delay / self.plan.delay);
            inj.record(FaultKind::Delay);
            self.stats.delays += 1;
        }
        if u_reorder < self.plan.reorder {
            // The transport applies (and counts) the slip only when the
            // queue tail is from another source, so per-link FIFO — the
            // reliability layer's resequencing guarantee — is never broken.
            inj.reorder = true;
        }
        inj
    }

    /// The plan driving this state.
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Golden values: the fault model's byte-identity rests on this
        // sequence never changing.
        let mut rng = SplitMix64::seeded(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let mut rng = SplitMix64::seeded(42);
        let first = rng.next_u64();
        assert_eq!(first, SplitMix64::seeded(42).next_u64());
        let f = SplitMix64::seeded(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn split_streams_are_independent_of_draw_order() {
        let root = SplitMix64::seeded(9);
        let mut a1 = root.split(0);
        let mut b1 = root.split(1);
        let (x, y) = (a1.next_u64(), b1.next_u64());
        // Re-derive b without touching a: same value.
        let mut b2 = root.split(1);
        assert_eq!(b2.next_u64(), y);
        assert_ne!(x, y);
    }

    #[test]
    fn partition_spec_round_trips() {
        for s in ["0,1|2,3@0.005..0.02", "0|1@0.001..0.004"] {
            let p: Partition = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
            assert_eq!(p.to_string().parse::<Partition>().unwrap(), p);
        }
        assert!("0,1@1..2".parse::<Partition>().is_err());
        assert!("0|1@2..1".parse::<Partition>().is_err());
        assert!("|1@1..2".parse::<Partition>().is_err());
    }

    #[test]
    fn partition_blocks_only_inside_the_window_and_across_the_cut() {
        let p: Partition = "0,1|2,3@0.5..1.0".parse().unwrap();
        assert!(p.blocks(0, 2, 0.5));
        assert!(p.blocks(3, 1, 0.75));
        assert!(!p.blocks(0, 1, 0.75)); // same side
        assert!(!p.blocks(0, 2, 0.25)); // before
        assert!(!p.blocks(0, 2, 1.0)); // healed
    }

    #[test]
    fn crash_spec_round_trips() {
        for s in ["2@0.0015", "0#120"] {
            let c: Crash = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
        }
        assert!("x@1".parse::<Crash>().is_err());
        assert!("2".parse::<Crash>().is_err());
    }

    #[test]
    fn empty_plan_hashes_to_zero_and_nonempty_does_not() {
        assert_eq!(FaultPlan::default().hash(), 0);
        let lossy = FaultPlan::lossy(1);
        assert_ne!(lossy.hash(), 0);
        assert_eq!(lossy.hash(), FaultPlan::lossy(1).hash());
        assert_ne!(lossy.hash(), FaultPlan::lossy(2).hash());
        assert_ne!(lossy.hash(), FaultPlan::partitioned(1, 4).hash());
    }

    #[test]
    fn for_seed_derives_distinct_reproducible_streams() {
        let base = FaultPlan::lossy(7);
        assert_eq!(base.for_seed(3), base.for_seed(3));
        assert_ne!(base.for_seed(3).seed, base.for_seed(4).seed);
        // Seed material flows from the master seed too.
        assert_ne!(
            FaultPlan::lossy(1).for_seed(3).seed,
            FaultPlan::lossy(2).for_seed(3).seed
        );
    }

    #[test]
    fn fault_state_is_deterministic_per_link() {
        let plan = FaultPlan::lossy(11);
        let mut s1 = FaultState::new(&plan, 4).unwrap();
        let mut s2 = FaultState::new(&plan, 4).unwrap();
        for i in 0..64 {
            let a = s1.on_transmit(0, 1, i as f64 * 1e-4, 2, 1e-4, 4e-4);
            let b = s2.on_transmit(0, 1, i as f64 * 1e-4, 2, 1e-4, 4e-4);
            assert_eq!(a.extra_delay.to_bits(), b.extra_delay.to_bits());
            assert_eq!(a.extra_datagrams, b.extra_datagrams);
            assert_eq!(a.reorder, b.reorder);
        }
        assert_eq!(s1.stats, s2.stats);
        assert!(
            s1.stats.injected() > 0,
            "lossy plan never fired in 64 sends"
        );
    }

    #[test]
    fn empty_plan_builds_no_state() {
        assert!(FaultState::new(&FaultPlan::default(), 4).is_none());
        let seeded_only = FaultPlan {
            seed: 99,
            ..FaultPlan::default()
        };
        assert!(FaultState::new(&seeded_only, 4).is_none());
    }
}

//! Scenario files: declarative descriptions of a simulated testbed.
//!
//! A scenario file names an interconnect preset, optional per-field
//! overrides on top of it, a processor count, and — opaquely to this crate
//! — the benchmark preset, workload subset and system subset the
//! reproduction harness should run (the harness resolves those strings; the
//! cluster crate only owns the network model).  Both TOML and JSON carriers
//! are accepted; `examples/scenarios/` in the repository root holds
//! commented examples and docs/EXPERIMENTS.md documents every key.
//!
//! The canonical TOML shape:
//!
//! ```toml
//! name = "atm-16"
//! net = "atm"              # fddi | ethernet | atm | ideal
//! procs = 16
//! preset = "scaled"        # tiny | scaled | paper (harness-interpreted)
//! workloads = ["EP", "Water-288"]
//! systems = ["lrc", "hlrc", "pvm"]
//!
//! [overrides]              # every key optional; replaces the preset value
//! bandwidth = 8.0e6        # bytes/second
//! latency = 250.0e-6       # seconds
//! shared_medium = false
//! ```
//!
//! The build environment has no crates.io access and the `serde` shim is
//! declare-only, so this module carries its own small reader for the two
//! carriers (a line-oriented TOML subset: comments, one `[section]` level,
//! scalar and single-line-array values — and a recursive-descent JSON
//! subset: one nesting level of objects, scalars, arrays of scalars).
//! [`Scenario::to_toml`] re-serialises canonically; parse → serialise →
//! parse is the identity, which the round-trip tests assert.
//!
//! # Example
//!
//! ```
//! use cluster::scenario::Scenario;
//!
//! let s = Scenario::parse_toml(r#"
//!     name = "slow-ring"
//!     net = "fddi"
//!     procs = 16
//!     [overrides]
//!     bandwidth = 5.25e6
//! "#).unwrap();
//! assert_eq!(s.procs, Some(16));
//! let cfg = s.cluster_config(8); // 8 is the fallback when procs is absent
//! assert_eq!(cfg.nprocs, 16);
//! assert_eq!(cfg.bandwidth, 5.25e6);
//! // Canonical re-serialisation round-trips.
//! assert_eq!(Scenario::parse_toml(&s.to_toml()).unwrap(), s);
//! ```

use crate::config::{ClusterConfig, NetModel, NetPreset, Overrides};
use crate::fault::{Crash, FaultPlan, Partition};
use std::path::Path;

/// A parsed scenario file.
///
/// The network-model half ([`net`](Self::net), [`overrides`](Self::overrides),
/// [`procs`](Self::procs)) is interpreted by this crate; the harness half
/// ([`preset`](Self::preset), [`workloads`](Self::workloads),
/// [`systems`](Self::systems)) is carried as opaque strings for the
/// reproduction harness to resolve.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name of the scenario (defaults to empty).
    pub name: String,
    /// The interconnect preset to start from (defaults to FDDI).
    pub net: NetPreset,
    /// Processor count; `None` leaves the caller's default in force.
    pub procs: Option<usize>,
    /// Benchmark problem-size preset name (`tiny` / `scaled` / `paper`);
    /// opaque to this crate.
    pub preset: Option<String>,
    /// Workload subset by harness name; empty means "all".
    pub workloads: Vec<String>,
    /// System subset (`lrc` / `hlrc` / `pvm`); empty means "all".
    pub systems: Vec<String>,
    /// Field overrides applied on top of [`net`](Self::net).
    pub overrides: Overrides,
    /// Arbiter tie-break seed (`sched_seed` key); `None`/0 = rank order.
    pub sched_seed: Option<u64>,
    /// Cap on seeded tie-break draws (`tie_limit` key); rank order after.
    pub tie_limit: Option<u64>,
    /// Scheduler island count (`islands` key); `None` leaves the caller's
    /// default (one island) in force.  An execution strategy, not a cost
    /// model knob: every width produces bit-identical output.
    pub islands: Option<usize>,
    /// Worker threads driving the islands inside each horizon window
    /// (`island_threads` key); `None` leaves the caller's default (serial)
    /// in force.  Like `islands`, an execution strategy: every thread
    /// count produces bit-identical output.
    pub island_threads: Option<usize>,
    /// Fault-injection plan (`[fault]` section); `None` = no faults.
    pub fault: Option<FaultPlan>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: String::new(),
            net: NetPreset::Fddi,
            procs: None,
            preset: None,
            workloads: Vec::new(),
            systems: Vec::new(),
            overrides: Overrides::default(),
            sched_seed: None,
            tie_limit: None,
            islands: None,
            island_threads: None,
            fault: None,
        }
    }
}

/// Why a scenario file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError(msg.into()))
}

/// A parsed right-hand-side value, shared by the TOML and JSON readers.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    /// A non-negative integer kept exact: 64-bit seeds do not survive a
    /// round trip through f64, so the readers preserve bare integers.
    Int(u64),
    Bool(bool),
    List(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) | Value::Int(_) => "number",
            Value::Bool(_) => "boolean",
            Value::List(_) => "array",
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, ScenarioError> {
        match self {
            Value::Str(s) => Ok(s),
            other => err(format!(
                "'{key}' must be a string, got {}",
                other.type_name()
            )),
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, ScenarioError> {
        match self {
            Value::Num(n) => Ok(*n),
            Value::Int(n) => Ok(*n as f64),
            other => err(format!(
                "'{key}' must be a number, got {}",
                other.type_name()
            )),
        }
    }

    fn as_u64(&self, key: &str) -> Result<u64, ScenarioError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Ok(*n as u64)
            }
            other => err(format!(
                "'{key}' must be a non-negative integer, got {other:?}"
            )),
        }
    }

    fn as_nonneg_f64(&self, key: &str) -> Result<f64, ScenarioError> {
        let n = self.as_f64(key)?;
        if n >= 0.0 {
            Ok(n)
        } else {
            err(format!("'{key}' must not be negative, got {n}"))
        }
    }

    fn as_positive_f64(&self, key: &str) -> Result<f64, ScenarioError> {
        let n = self.as_f64(key)?;
        if n > 0.0 {
            Ok(n)
        } else {
            err(format!("'{key}' must be positive, got {n}"))
        }
    }

    fn as_usize(&self, key: &str) -> Result<usize, ScenarioError> {
        let n = self.as_f64(key)?;
        if n.fract() == 0.0 && n >= 1.0 && n <= u32::MAX as f64 {
            Ok(n as usize)
        } else {
            err(format!("'{key}' must be a positive integer, got {n}"))
        }
    }

    /// Parse a list of `T: FromStr` strings (partition and crash specs).
    fn as_spec_list<T: std::str::FromStr<Err = String>>(
        &self,
        key: &str,
    ) -> Result<Vec<T>, ScenarioError> {
        self.as_string_list(key)?
            .iter()
            .map(|s| s.parse().map_err(ScenarioError))
            .collect()
    }

    fn as_bool(&self, key: &str) -> Result<bool, ScenarioError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => err(format!(
                "'{key}' must be a boolean, got {}",
                other.type_name()
            )),
        }
    }

    fn as_string_list(&self, key: &str) -> Result<Vec<String>, ScenarioError> {
        match self {
            Value::List(items) => items
                .iter()
                .map(|v| v.as_str(key).map(String::from))
                .collect(),
            other => err(format!(
                "'{key}' must be an array of strings, got {}",
                other.type_name()
            )),
        }
    }
}

impl Scenario {
    /// Load a scenario from a file, picking the carrier by extension:
    /// `.json` parses as JSON, everything else as TOML.
    pub fn from_path(path: &Path) -> Result<Self, ScenarioError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return err(format!("cannot read {}: {e}", path.display())),
        };
        let is_json = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
        if is_json {
            Self::parse_json(&text)
        } else {
            Self::parse_toml(&text)
        }
        .map_err(|e| ScenarioError(format!("{}: {}", path.display(), e.0)))
    }

    /// Parse the TOML carrier (see the module docs for the accepted subset).
    pub fn parse_toml(text: &str) -> Result<Self, ScenarioError> {
        let mut scenario = Scenario::default();
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| ScenarioError(format!("line {}: {msg}", lineno + 1));
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(at(format!("malformed section header '{line}'")));
                };
                let name = name.trim();
                if name != "overrides" && name != "fault" {
                    return Err(at(format!(
                        "unknown section '[{name}]'; only [overrides] and [fault] exist"
                    )));
                }
                if name == "fault" {
                    // A bare [fault] header is a valid (empty) plan.
                    scenario.fault.get_or_insert_with(FaultPlan::default);
                }
                section = Some(name.to_string());
                continue;
            }
            let Some((key, rhs)) = line.split_once('=') else {
                return Err(at(format!("expected 'key = value', got '{line}'")));
            };
            let key = key.trim();
            let value = parse_toml_value(rhs.trim()).map_err(|e| at(e.0))?;
            scenario
                .set(section.as_deref(), key, &value)
                .map_err(|e| at(e.0))?;
        }
        Ok(scenario)
    }

    /// Parse the JSON carrier: one top-level object, with `"overrides"` as
    /// an optional nested object and the remaining keys as in TOML.
    pub fn parse_json(text: &str) -> Result<Self, ScenarioError> {
        let mut scenario = Scenario::default();
        let pairs = json::parse_object(text)?;
        for (key, value) in pairs {
            match value {
                json::Json::Object(inner) => {
                    if key != "overrides" && key != "fault" {
                        return err(format!(
                            "unknown object-valued key '{key}'; only \"overrides\" and \
                             \"fault\" nest"
                        ));
                    }
                    if key == "fault" {
                        scenario.fault.get_or_insert_with(FaultPlan::default);
                    }
                    for (k, v) in inner {
                        let v = v.into_value(&k)?;
                        scenario.set(Some(&key), &k, &v)?;
                    }
                }
                other => {
                    let v = other.into_value(&key)?;
                    scenario.set(None, &key, &v)?;
                }
            }
        }
        Ok(scenario)
    }

    /// Assign one parsed key; `section` is `None` at top level.
    fn set(
        &mut self,
        section: Option<&str>,
        key: &str,
        value: &Value,
    ) -> Result<(), ScenarioError> {
        match section {
            None => match key {
                "name" => self.name = value.as_str(key)?.to_string(),
                "net" => {
                    self.net = value.as_str(key)?.parse().map_err(ScenarioError)?;
                }
                "procs" | "nprocs" => self.procs = Some(value.as_usize(key)?),
                "preset" => self.preset = Some(value.as_str(key)?.to_string()),
                "workloads" => self.workloads = value.as_string_list(key)?,
                "systems" => self.systems = value.as_string_list(key)?,
                "sched_seed" => self.sched_seed = Some(value.as_u64(key)?),
                "tie_limit" => self.tie_limit = Some(value.as_u64(key)?),
                "islands" => self.islands = Some(value.as_usize(key)?),
                "island_threads" => self.island_threads = Some(value.as_usize(key)?),
                other => {
                    return err(format!(
                        "unknown key '{other}'; known keys: name, net, procs, preset, \
                         workloads, systems, sched_seed, tie_limit, islands, \
                         island_threads, [overrides], [fault]"
                    ))
                }
            },
            // Time costs may be zero (the ideal preset's are), but never
            // negative; a zero bandwidth would make occupancy infinite and
            // surface as a baffling virtual-time deadlock, so it must be
            // strictly positive.
            Some("overrides") => match key {
                "latency" => self.overrides.latency = Some(value.as_nonneg_f64(key)?),
                "fragment_overhead" => {
                    self.overrides.fragment_overhead = Some(value.as_nonneg_f64(key)?)
                }
                "bandwidth" => self.overrides.bandwidth = Some(value.as_positive_f64(key)?),
                "mtu" => self.overrides.mtu = Some(value.as_usize(key)?),
                "send_overhead" => self.overrides.send_overhead = Some(value.as_nonneg_f64(key)?),
                "recv_overhead" => self.overrides.recv_overhead = Some(value.as_nonneg_f64(key)?),
                "shared_medium" => self.overrides.shared_medium = Some(value.as_bool(key)?),
                other => {
                    return err(format!(
                        "unknown override '{other}'; known overrides: latency, \
                         fragment_overhead, bandwidth, mtu, send_overhead, recv_overhead, \
                         shared_medium"
                    ))
                }
            },
            // Probabilities must be valid; partitions and crashes arrive as
            // the canonical spec strings their `FromStr` impls validate.
            Some("fault") => {
                let plan = self.fault.get_or_insert_with(FaultPlan::default);
                let as_prob = |v: &Value| -> Result<f64, ScenarioError> {
                    let p = v.as_nonneg_f64(key)?;
                    if p <= 1.0 {
                        Ok(p)
                    } else {
                        err(format!("'{key}' is a probability; got {p} > 1"))
                    }
                };
                match key {
                    "seed" => plan.seed = value.as_u64(key)?,
                    "drop" => plan.drop = as_prob(value)?,
                    "duplicate" => plan.duplicate = as_prob(value)?,
                    "reorder" => plan.reorder = as_prob(value)?,
                    "delay" => plan.delay = as_prob(value)?,
                    "delay_factor" => plan.delay_factor = value.as_nonneg_f64(key)?,
                    "retransmit" => plan.retransmit = value.as_positive_f64(key)?,
                    "partitions" => plan.partitions = value.as_spec_list::<Partition>(key)?,
                    "crashes" => plan.crashes = value.as_spec_list::<Crash>(key)?,
                    other => {
                        return err(format!(
                            "unknown fault key '{other}'; known keys: seed, drop, duplicate, \
                             reorder, delay, delay_factor, retransmit, partitions, crashes"
                        ))
                    }
                }
            }
            Some(s) => return err(format!("unknown section '{s}'")),
        }
        Ok(())
    }

    /// The interconnect identity this scenario describes.
    pub fn net_model(&self) -> NetModel {
        NetModel {
            preset: self.net,
            overrides: self.overrides,
        }
    }

    /// Materialise the cluster configuration, using `default_procs` when the
    /// file does not pin a processor count.  Carries the fault plan and
    /// schedule seed onto the config, so a reproducer scenario replays its
    /// finding exactly.
    pub fn cluster_config(&self, default_procs: usize) -> ClusterConfig {
        let mut cfg = self.net_model().config(self.procs.unwrap_or(default_procs));
        if let Some(seed) = self.sched_seed {
            cfg.sched_seed = seed;
        }
        if let Some(limit) = self.tie_limit {
            cfg.tie_limit = Some(limit);
        }
        if let Some(islands) = self.islands {
            cfg.islands = islands;
        }
        if let Some(threads) = self.island_threads {
            cfg.island_threads = threads;
        }
        if let Some(plan) = &self.fault {
            cfg.fault = plan.clone();
        }
        cfg
    }

    /// Serialise canonically as TOML.  Floats print in Rust's
    /// shortest-round-trip form, so `parse_toml(to_toml(s)) == s` exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        if !self.name.is_empty() {
            out.push_str(&format!("name = {}\n", toml_escape(&self.name)));
        }
        out.push_str(&format!("net = \"{}\"\n", self.net.name()));
        if let Some(p) = self.procs {
            out.push_str(&format!("procs = {p}\n"));
        }
        if let Some(p) = &self.preset {
            out.push_str(&format!("preset = {}\n", toml_escape(p)));
        }
        let list = |items: &[String]| {
            let quoted: Vec<String> = items.iter().map(|s| toml_escape(s)).collect();
            format!("[{}]", quoted.join(", "))
        };
        if !self.workloads.is_empty() {
            out.push_str(&format!("workloads = {}\n", list(&self.workloads)));
        }
        if !self.systems.is_empty() {
            out.push_str(&format!("systems = {}\n", list(&self.systems)));
        }
        if let Some(seed) = self.sched_seed {
            out.push_str(&format!("sched_seed = {seed}\n"));
        }
        if let Some(limit) = self.tie_limit {
            out.push_str(&format!("tie_limit = {limit}\n"));
        }
        if let Some(islands) = self.islands {
            out.push_str(&format!("islands = {islands}\n"));
        }
        if let Some(threads) = self.island_threads {
            out.push_str(&format!("island_threads = {threads}\n"));
        }
        if !self.overrides.is_empty() {
            out.push_str("\n[overrides]\n");
            // Exhaustive destructuring: a new override field fails to
            // compile here instead of silently vanishing from the
            // canonical serialisation.
            let Overrides {
                latency,
                fragment_overhead,
                bandwidth,
                mtu,
                send_overhead,
                recv_overhead,
                shared_medium,
            } = self.overrides;
            if let Some(v) = latency {
                out.push_str(&format!("latency = {v}\n"));
            }
            if let Some(v) = fragment_overhead {
                out.push_str(&format!("fragment_overhead = {v}\n"));
            }
            if let Some(v) = bandwidth {
                out.push_str(&format!("bandwidth = {v}\n"));
            }
            if let Some(v) = mtu {
                out.push_str(&format!("mtu = {v}\n"));
            }
            if let Some(v) = send_overhead {
                out.push_str(&format!("send_overhead = {v}\n"));
            }
            if let Some(v) = recv_overhead {
                out.push_str(&format!("recv_overhead = {v}\n"));
            }
            if let Some(v) = shared_medium {
                out.push_str(&format!("shared_medium = {v}\n"));
            }
        }
        if let Some(plan) = &self.fault {
            out.push_str("\n[fault]\n");
            // Exhaustive destructuring, as for [overrides]: a new fault
            // field fails to compile here instead of silently vanishing.
            // Only non-default fields are emitted; the defaults re-apply on
            // parse, so the round trip is exact.
            let d = FaultPlan::default();
            let FaultPlan {
                seed,
                drop,
                duplicate,
                reorder,
                delay,
                delay_factor,
                retransmit,
                partitions,
                crashes,
            } = plan;
            if *seed != d.seed {
                out.push_str(&format!("seed = {seed}\n"));
            }
            for (name, v, dv) in [
                ("drop", drop, d.drop),
                ("duplicate", duplicate, d.duplicate),
                ("reorder", reorder, d.reorder),
                ("delay", delay, d.delay),
                ("delay_factor", delay_factor, d.delay_factor),
                ("retransmit", retransmit, d.retransmit),
            ] {
                if *v != dv {
                    out.push_str(&format!("{name} = {v}\n"));
                }
            }
            if !partitions.is_empty() {
                let specs: Vec<String> = partitions
                    .iter()
                    .map(|p| toml_escape(&p.to_string()))
                    .collect();
                out.push_str(&format!("partitions = [{}]\n", specs.join(", ")));
            }
            if !crashes.is_empty() {
                let specs: Vec<String> = crashes
                    .iter()
                    .map(|c| toml_escape(&c.to_string()))
                    .collect();
                out.push_str(&format!("crashes = [{}]\n", specs.join(", ")));
            }
        }
        out
    }
}

/// Quote a string for [`Scenario::to_toml`], escaping exactly the
/// sequences the parser accepts (`\\`, `\"`, `\n`, `\t`, `\r`), so
/// serialise → parse is the identity for any content.
fn toml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Strip a `#` comment, respecting `"..."` strings (with escapes).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse one TOML right-hand side: a quoted string (with `\\ \" \n \t \r`
/// escapes), `true`/`false`, a single-line array, or a number (integer,
/// float, scientific notation).
fn parse_toml_value(rhs: &str) -> Result<Value, ScenarioError> {
    let chars: Vec<char> = rhs.chars().collect();
    let mut pos = 0usize;
    let value = parse_value_at(&chars, &mut pos, rhs)?;
    while pos < chars.len() && chars[pos].is_whitespace() {
        pos += 1;
    }
    if pos != chars.len() {
        return err(format!("trailing content after value in '{rhs}'"));
    }
    Ok(value)
}

/// Recursive-descent worker behind [`parse_toml_value`]: parses one value
/// starting at `pos`, leaving `pos` just past it.
fn parse_value_at(chars: &[char], pos: &mut usize, rhs: &str) -> Result<Value, ScenarioError> {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
    match chars.get(*pos) {
        None => err("missing value"),
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match chars.get(*pos) {
                    None => return err(format!("unterminated string in '{rhs}'")),
                    Some('"') => {
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match chars.get(*pos) {
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            other => {
                                return err(format!(
                                    "unsupported escape '\\{}' in '{rhs}'",
                                    other.copied().map(String::from).unwrap_or_default()
                                ))
                            }
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        s.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                while *pos < chars.len() && chars[*pos].is_whitespace() {
                    *pos += 1;
                }
                match chars.get(*pos) {
                    None => {
                        return err(format!(
                            "unterminated array in '{rhs}' (arrays are single-line)"
                        ))
                    }
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::List(items));
                    }
                    Some(',') => {
                        // Separator (also tolerates a trailing comma).
                        *pos += 1;
                    }
                    Some(_) => items.push(parse_value_at(chars, pos, rhs)?),
                }
            }
        }
        Some(_) => {
            // A bare word: a boolean or a number, ending at whitespace,
            // a comma or a closing bracket.
            let start = *pos;
            while *pos < chars.len()
                && !chars[*pos].is_whitespace()
                && chars[*pos] != ','
                && chars[*pos] != ']'
            {
                *pos += 1;
            }
            let word: String = chars[start..*pos].iter().collect();
            match word.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => {
                    // TOML permits underscores in numbers.  Bare integers
                    // stay exact (u64) — 64-bit seeds don't survive f64.
                    let cleaned: String = word.chars().filter(|&c| c != '_').collect();
                    if let Ok(n) = cleaned.parse::<u64>() {
                        return Ok(Value::Int(n));
                    }
                    match cleaned.parse::<f64>() {
                        Ok(n) if n.is_finite() => Ok(Value::Num(n)),
                        _ => err(format!("cannot parse value '{word}'")),
                    }
                }
            }
        }
    }
}

/// The minimal JSON reader backing [`Scenario::parse_json`].
mod json {
    use super::{err, ScenarioError, Value};

    /// A parsed JSON value (no `null`: a scenario key is either present
    /// with a value or absent).
    #[derive(Debug)]
    pub enum Json {
        Str(String),
        Num(f64),
        Int(u64),
        Bool(bool),
        Array(Vec<Json>),
        Object(Vec<(String, Json)>),
    }

    impl Json {
        /// Lower to the carrier-independent [`Value`]; objects don't lower
        /// (the caller handles the one permitted nesting level).
        pub fn into_value(self, key: &str) -> Result<Value, ScenarioError> {
            match self {
                Json::Str(s) => Ok(Value::Str(s)),
                Json::Num(n) => Ok(Value::Num(n)),
                Json::Int(n) => Ok(Value::Int(n)),
                Json::Bool(b) => Ok(Value::Bool(b)),
                Json::Array(items) => Ok(Value::List(
                    items
                        .into_iter()
                        .map(|i| i.into_value(key))
                        .collect::<Result<_, _>>()?,
                )),
                Json::Object(_) => err(format!("'{key}' must not be an object")),
            }
        }
    }

    /// Parse a full document that must be a single object.
    pub fn parse_object(text: &str) -> Result<Vec<(String, Json)>, ScenarioError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing content at byte {}", p.pos));
        }
        match value {
            Json::Object(pairs) => Ok(pairs),
            other => err(format!(
                "a scenario must be a JSON object, got {}",
                match other {
                    Json::Str(_) => "a string",
                    Json::Num(_) | Json::Int(_) => "a number",
                    Json::Bool(_) => "a boolean",
                    Json::Array(_) => "an array",
                    Json::Object(_) => unreachable!(),
                }
            )),
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), ScenarioError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Json, ScenarioError> {
            self.skip_ws();
            match self.peek() {
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => err(format!("unexpected content at byte {}", self.pos)),
            }
        }

        fn literal(&mut self, word: &str, out: Json) -> Result<Json, ScenarioError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(out)
            } else {
                err(format!("unexpected content at byte {}", self.pos))
            }
        }

        fn string(&mut self) -> Result<String, ScenarioError> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'\\' {
                    return err("escape sequences in strings are not supported".to_string());
                }
                if b == b'"' {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| ScenarioError("invalid UTF-8 in string".into()))?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                self.pos += 1;
            }
            err("unterminated string".to_string())
        }

        fn number(&mut self) -> Result<Json, ScenarioError> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
            // Bare integers stay exact: 64-bit seeds don't survive f64.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
            match text.parse::<f64>() {
                Ok(n) if n.is_finite() => Ok(Json::Num(n)),
                _ => err(format!("cannot parse number '{text}'")),
            }
        }

        fn array(&mut self) -> Result<Json, ScenarioError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Json, ScenarioError> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_TOML: &str = r#"
        # A fully specified scenario.
        name = "atm-sixteen"    # trailing comment
        net = "atm"
        procs = 16
        preset = "tiny"
        workloads = ["EP", "SOR-Zero"]
        systems = ["lrc", "pvm"]

        [overrides]
        latency = 250e-6
        fragment_overhead = 1e-4
        bandwidth = 8.0e6
        mtu = 9_180
        send_overhead = 75e-6
        recv_overhead = 0.0
        shared_medium = false
    "#;

    #[test]
    fn toml_parses_every_key() {
        let s = Scenario::parse_toml(FULL_TOML).unwrap();
        assert_eq!(s.name, "atm-sixteen");
        assert_eq!(s.net, NetPreset::Atm);
        assert_eq!(s.procs, Some(16));
        assert_eq!(s.preset.as_deref(), Some("tiny"));
        assert_eq!(s.workloads, ["EP", "SOR-Zero"]);
        assert_eq!(s.systems, ["lrc", "pvm"]);
        // Every override field is exercised, so the round-trip test below
        // covers the full serialisation surface.
        assert_eq!(
            s.overrides,
            Overrides {
                latency: Some(250e-6),
                fragment_overhead: Some(1e-4),
                bandwidth: Some(8.0e6),
                mtu: Some(9180),
                send_overhead: Some(75e-6),
                recv_overhead: Some(0.0),
                shared_medium: Some(false),
            }
        );
        let cfg = s.cluster_config(8);
        assert_eq!(cfg.nprocs, 16);
        assert_eq!(cfg.mtu, 9180);
        assert_eq!(cfg.send_overhead, 75e-6);
    }

    #[test]
    fn nonsense_override_values_are_rejected() {
        let e = Scenario::parse_toml("[overrides]\nbandwidth = 0.0").unwrap_err();
        assert!(
            e.to_string().contains("'bandwidth' must be positive"),
            "{e}"
        );
        let e = Scenario::parse_toml("[overrides]\nbandwidth = -1e6").unwrap_err();
        assert!(
            e.to_string().contains("'bandwidth' must be positive"),
            "{e}"
        );
        let e = Scenario::parse_toml("[overrides]\nlatency = -1e-6").unwrap_err();
        assert!(
            e.to_string().contains("'latency' must not be negative"),
            "{e}"
        );
        // Zero time costs are legitimate (the ideal preset uses them).
        let s = Scenario::parse_toml("[overrides]\nlatency = 0.0").unwrap();
        assert_eq!(s.overrides.latency, Some(0.0));
    }

    #[test]
    fn json_carrier_parses_the_same_scenario() {
        let toml = Scenario::parse_toml(FULL_TOML).unwrap();
        let json = Scenario::parse_json(
            r#"{
                "name": "atm-sixteen",
                "net": "atm",
                "procs": 16,
                "preset": "tiny",
                "workloads": ["EP", "SOR-Zero"],
                "systems": ["lrc", "pvm"],
                "overrides": {
                    "latency": 250e-6,
                    "fragment_overhead": 1e-4,
                    "bandwidth": 8.0e6,
                    "mtu": 9180,
                    "send_overhead": 75e-6,
                    "recv_overhead": 0.0,
                    "shared_medium": false
                }
            }"#,
        )
        .unwrap();
        assert_eq!(json, toml);
    }

    #[test]
    fn to_toml_round_trips_exactly() {
        let original = Scenario::parse_toml(FULL_TOML).unwrap();
        let reparsed = Scenario::parse_toml(&original.to_toml()).unwrap();
        assert_eq!(reparsed, original);
        // And a second serialisation is byte-identical to the first.
        assert_eq!(reparsed.to_toml(), original.to_toml());
    }

    #[test]
    fn defaults_are_fddi_with_nothing_pinned() {
        let s = Scenario::parse_toml("").unwrap();
        assert_eq!(s, Scenario::default());
        assert_eq!(s.net, NetPreset::Fddi);
        assert_eq!(s.cluster_config(4).nprocs, 4);
        assert!(s.net_model().overrides.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers_and_key_names() {
        let e = Scenario::parse_toml("net = \"warpdrive\"").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(e.to_string().contains("warpdrive"), "{e}");
        let e = Scenario::parse_toml("speed = 3").unwrap_err();
        assert!(e.to_string().contains("unknown key 'speed'"), "{e}");
        let e = Scenario::parse_toml("[overrides]\nwarp = 9").unwrap_err();
        assert!(e.to_string().contains("unknown override 'warp'"), "{e}");
        let e = Scenario::parse_toml("procs = 2.5").unwrap_err();
        assert!(e.to_string().contains("positive integer"), "{e}");
        let e = Scenario::parse_json("[1, 2]").unwrap_err();
        assert!(e.to_string().contains("must be a JSON object"), "{e}");
        let e = Scenario::parse_json("{\"procs\": 4} extra").unwrap_err();
        assert!(e.to_string().contains("trailing content"), "{e}");
    }

    #[test]
    fn fault_section_and_seeds_round_trip() {
        let text = r#"
            name = "lossy-repro"
            procs = 4
            sched_seed = 18446744073709551615   # u64::MAX survives exactly
            tie_limit = 12
            islands = 4
            island_threads = 4

            [fault]
            seed = 9874321098765432109
            drop = 0.02
            delay = 0.01
            partitions = ["0,1|2,3@0.001..0.004"]
            crashes = ["2@0.0015", "3#120"]
        "#;
        let s = Scenario::parse_toml(text).unwrap();
        assert_eq!(s.sched_seed, Some(u64::MAX));
        assert_eq!(s.tie_limit, Some(12));
        assert_eq!(s.islands, Some(4));
        assert_eq!(s.island_threads, Some(4));
        let plan = s.fault.as_ref().unwrap();
        assert_eq!(plan.seed, 9874321098765432109);
        assert_eq!(plan.drop, 0.02);
        assert_eq!(plan.delay, 0.01);
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(
            plan.crash_for(3),
            Some(crate::fault::CrashPoint::Event(120))
        );
        // The plan lands on the cluster config.
        let cfg = s.cluster_config(8);
        assert_eq!(cfg.nprocs, 4);
        assert_eq!(cfg.sched_seed, u64::MAX);
        assert_eq!(cfg.tie_limit, Some(12));
        assert_eq!(cfg.islands, 4);
        assert_eq!(cfg.island_threads, 4);
        assert_eq!(&cfg.fault, plan);
        // Canonical serialisation round-trips exactly, twice.
        let reparsed = Scenario::parse_toml(&s.to_toml()).unwrap();
        assert_eq!(reparsed, s);
        assert_eq!(reparsed.to_toml(), s.to_toml());
        // And through the JSON carrier.
        let json = Scenario::parse_json(
            r#"{
                "sched_seed": 18446744073709551615,
                "fault": {"seed": 9874321098765432109, "drop": 0.02,
                          "crashes": ["2@0.0015"]}
            }"#,
        )
        .unwrap();
        assert_eq!(json.sched_seed, Some(u64::MAX));
        assert_eq!(json.fault.as_ref().unwrap().seed, 9874321098765432109);
    }

    #[test]
    fn bad_fault_values_are_rejected() {
        let e = Scenario::parse_toml("[fault]\ndrop = 1.5").unwrap_err();
        assert!(e.to_string().contains("probability"), "{e}");
        let e = Scenario::parse_toml("[fault]\npartitions = [\"0|@1..2\"]").unwrap_err();
        assert!(e.to_string().contains("bad partition spec"), "{e}");
        let e = Scenario::parse_toml("[fault]\ncrashes = [\"nope\"]").unwrap_err();
        assert!(e.to_string().contains("bad crash spec"), "{e}");
        let e = Scenario::parse_toml("[fault]\nretransmit = 0.0").unwrap_err();
        assert!(e.to_string().contains("must be positive"), "{e}");
        let e = Scenario::parse_toml("[fault]\nwarp = 1").unwrap_err();
        assert!(e.to_string().contains("unknown fault key"), "{e}");
        // A bare [fault] header is a valid empty plan.
        let s = Scenario::parse_toml("[fault]").unwrap();
        assert!(s.fault.as_ref().unwrap().is_empty());
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let s = Scenario::parse_toml("name = \"has # hash\" # real comment").unwrap();
        assert_eq!(s.name, "has # hash");
    }

    #[test]
    fn awkward_strings_round_trip_through_to_toml() {
        // Quotes, backslashes, commas, hashes and tabs in string values:
        // serialise → parse must be the identity for all of them.
        let s = Scenario {
            name: "a \"quoted\\name\", with # hash\tand more".to_string(),
            workloads: vec!["EP, almost".into(), "SOR \"Zero\"".into()],
            ..Scenario::default()
        };
        let reparsed = Scenario::parse_toml(&s.to_toml()).unwrap();
        assert_eq!(reparsed, s);
        // And escaped quotes don't confuse the comment stripper.
        let t = Scenario::parse_toml("name = \"ends with \\\\\" # comment").unwrap();
        assert_eq!(t.name, "ends with \\");
    }

    #[test]
    fn trailing_garbage_after_a_value_is_rejected() {
        let e = Scenario::parse_toml("name = \"x\" \"y\"").unwrap_err();
        assert!(e.to_string().contains("trailing content"), "{e}");
        let e = Scenario::parse_toml("procs = 4 5").unwrap_err();
        assert!(e.to_string().contains("trailing content"), "{e}");
        let e = Scenario::parse_toml("name = \"bad \\q escape\"").unwrap_err();
        assert!(e.to_string().contains("unsupported escape"), "{e}");
    }
}

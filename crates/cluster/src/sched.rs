//! Conservative virtual-time arbitration: the pure decision logic of the
//! deterministic discrete-event scheduler.
//!
//! The simulated cluster runs one OS thread per process, but OS thread
//! interleaving must never influence the *virtual-time* outcome: every
//! arrival time, idle time and message counter the paper's tables report has
//! to be a pure function of the program and the cost model.  The transport
//! therefore executes all shared-state interactions (seizing the shared
//! medium, consuming or observing a mailbox) under a token discipline:
//!
//! * Between interactions a process runs freely — computation only touches
//!   its own virtual clock.
//! * At an interaction it *parks*, announcing the virtual time of its
//!   pending action (its key), and waits.
//! * When no process is running, the arbiter grants the token to the parked
//!   process with the **minimum key**, ties broken by rank.  Only the token
//!   holder may act, so the global order of transmissions and mailbox
//!   observations is a deterministic function of virtual timestamps.
//! * A process blocked in a receive with no matching message is not
//!   runnable; it is promoted to a parked state (keyed by the time it would
//!   consume the message) the moment a matching message is transmitted.
//!
//! This is the classic conservative (Chandy-Misra style) execution rule
//! specialised to a star topology: granting the minimum virtual time is safe
//! because every future action of a process with a later key carries a later
//! or equal timestamp, and interrupt-style replies (which *can* depart in
//! the past, like a SIGIO handler answering at the request's arrival time)
//! are themselves ordered by the deterministic grant sequence.
//!
//! When no process is runnable and at least one is blocked in a receive, no
//! message can ever be delivered again: that is a protocol deadlock, detected
//! immediately and reported with the full wait graph (instead of the
//! wall-clock timeout heuristic this module replaces).

use crate::net::{Message, Tag};

/// Scheduler state of one simulated process.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PState {
    /// Executing user code (holds the token after startup; during the
    /// startup prologue every process is `Running` until its first
    /// interaction).
    Running,
    /// Parked at an interaction point, runnable once granted.  `key` is the
    /// virtual time of the pending action: the departure time of a transmit,
    /// the consume time of a receive with a queued match, or the current
    /// clock of a non-blocking observation.
    Parked {
        /// Virtual time of the pending action, seconds.
        key: f64,
    },
    /// Blocked in a receive with no matching message queued.
    RecvBlocked {
        /// Source filter of the receive (`None` = any source).
        src: Option<usize>,
        /// Tag filter of the receive (`None` = any tag).
        tag: Option<Tag>,
        /// The receiver's virtual clock when it blocked.
        clock: f64,
    },
    /// The process closure has returned (or the process panicked).
    Finished,
}

/// Outcome of a scheduling decision over the current process states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Grant the token to this rank (the minimum-key parked process).
    Grant(usize),
    /// Some process is still running; nothing to decide yet.
    Wait,
    /// Every process is finished; nothing left to schedule.
    AllDone,
    /// No process is runnable but at least one is blocked in a receive:
    /// no message can ever be delivered again.
    Deadlock,
}

/// The conservative scheduling rule: if anyone is running, wait; otherwise
/// grant the parked process with the minimum `(key, rank)`; if nobody is
/// parked but someone is receive-blocked, declare deadlock.
pub(crate) fn choose(procs: &[PState]) -> Decision {
    let mut best: Option<(f64, usize)> = None;
    let mut blocked = false;
    for (rank, p) in procs.iter().enumerate() {
        match p {
            PState::Running => return Decision::Wait,
            PState::Parked { key } => {
                // Strict `<` keeps the lowest rank on equal keys.
                if best.is_none_or(|(k, _)| *key < k) {
                    best = Some((*key, rank));
                }
            }
            PState::RecvBlocked { .. } => blocked = true,
            PState::Finished => {}
        }
    }
    match best {
        Some((_, rank)) => Decision::Grant(rank),
        None if blocked => Decision::Deadlock,
        None => Decision::AllDone,
    }
}

/// Render the wait graph of a deadlocked cluster: every process's scheduler
/// state, the filter each blocked receiver is waiting on, and the messages
/// sitting undeliverable in its mailbox.
pub(crate) fn wait_graph(
    procs: &[PState],
    mailboxes: &[std::collections::VecDeque<Message>],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "virtual-time deadlock: every process is blocked with no deliverable message\n",
    );
    for (rank, p) in procs.iter().enumerate() {
        match p {
            PState::RecvBlocked { src, tag, clock } => {
                let queued: Vec<(usize, Tag, f64)> = mailboxes[rank]
                    .iter()
                    .map(|m| (m.src, m.tag, m.arrival))
                    .collect();
                let _ = writeln!(
                    out,
                    "  process {rank}: blocked at t={clock:.6} waiting for src={src:?} tag={tag:?}; \
                     queued (src, tag, arrival): {queued:?}"
                );
            }
            PState::Finished => {
                let _ = writeln!(out, "  process {rank}: finished");
            }
            other => {
                let _ = writeln!(out, "  process {rank}: {other:?}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_minimum_key() {
        let procs = vec![
            PState::Parked { key: 2.0 },
            PState::Parked { key: 1.0 },
            PState::Parked { key: 3.0 },
        ];
        assert_eq!(choose(&procs), Decision::Grant(1));
    }

    #[test]
    fn ties_break_by_rank() {
        let procs = vec![PState::Parked { key: 1.0 }, PState::Parked { key: 1.0 }];
        assert_eq!(choose(&procs), Decision::Grant(0));
    }

    #[test]
    fn waits_while_anyone_runs() {
        let procs = vec![PState::Parked { key: 0.0 }, PState::Running];
        assert_eq!(choose(&procs), Decision::Wait);
    }

    #[test]
    fn blocked_processes_are_not_runnable() {
        let procs = vec![
            PState::RecvBlocked {
                src: None,
                tag: None,
                clock: 0.0,
            },
            PState::Parked { key: 9.0 },
        ];
        assert_eq!(choose(&procs), Decision::Grant(1));
    }

    #[test]
    fn all_blocked_is_a_deadlock() {
        let procs = vec![
            PState::RecvBlocked {
                src: Some(1),
                tag: Some(7),
                clock: 1.5,
            },
            PState::Finished,
        ];
        assert_eq!(choose(&procs), Decision::Deadlock);
    }

    #[test]
    fn all_finished_is_done() {
        assert_eq!(
            choose(&[PState::Finished, PState::Finished]),
            Decision::AllDone
        );
    }

    #[test]
    fn wait_graph_names_the_blocked_filter() {
        let procs = vec![PState::RecvBlocked {
            src: Some(3),
            tag: Some(9),
            clock: 0.25,
        }];
        let graph = wait_graph(&procs, &[std::collections::VecDeque::new()]);
        assert!(graph.contains("process 0"));
        assert!(graph.contains("src=Some(3)"));
        assert!(graph.contains("tag=Some(9)"));
    }
}

//! Conservative virtual-time arbitration: the pure decision logic of the
//! deterministic discrete-event scheduler.
//!
//! The simulated cluster runs one OS thread per process, but OS thread
//! interleaving must never influence the *virtual-time* outcome: every
//! arrival time, idle time and message counter the paper's tables report has
//! to be a pure function of the program and the cost model.  The transport
//! therefore executes all shared-state interactions (seizing the shared
//! medium, consuming or observing a mailbox) under a token discipline:
//!
//! * Between interactions a process runs freely — computation only touches
//!   its own virtual clock.
//! * At an interaction it *parks*, announcing the virtual time of its
//!   pending action (its key), and waits.
//! * When no process is running, the arbiter grants the token to the parked
//!   process with the **minimum key**, ties broken by rank.  Only the token
//!   holder may act, so the global order of transmissions and mailbox
//!   observations is a deterministic function of virtual timestamps.
//! * A process blocked in a receive with no matching message is not
//!   runnable; it is promoted to a parked state (keyed by the time it would
//!   consume the message) the moment a matching message is transmitted.
//!
//! This is the classic conservative (Chandy-Misra style) execution rule
//! specialised to a star topology: granting the minimum virtual time is safe
//! because every future action of a process with a later key carries a later
//! or equal timestamp, and interrupt-style replies (which *can* depart in
//! the past, like a SIGIO handler answering at the request's arrival time)
//! are themselves ordered by the deterministic grant sequence.
//!
//! When no process is runnable and at least one is blocked in a receive, no
//! message can ever be delivered again: that is a protocol deadlock, detected
//! immediately and reported with the full wait graph (instead of the
//! wall-clock timeout heuristic this module replaces).
//!
//! # Islands
//!
//! The hot path is [`IslandSched`]: the same conservative rule, but the
//! processes are partitioned into contiguous rank blocks (*islands*), each
//! with its own event heap and a cached live minimum, synchronised through a
//! cross-island horizon derived from the minimum link latency (the classic
//! conservative-PDES lookahead).  Because the islands are contiguous
//! ascending-rank blocks and each heap orders by `(key, rank)`, the minimum
//! over island minima — and the island-ordered concatenation of tied
//! candidates — reproduces the flat arbiter's `(key, rank)` order exactly,
//! so every width produces bit-identical grants, tie-break draws, and
//! therefore output.  Under the `oracle-checks` feature each island decision
//! is replayed against a shadow flat [`Arbiter`] (which in turn replays
//! against the [`choose`] scan) and asserted equal.

use crate::fault::TieBreak;
use crate::net::{Message, Tag};

/// Scheduler state of one simulated process.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PState {
    /// Executing user code (holds the token after startup; during the
    /// startup prologue every process is `Running` until its first
    /// interaction).
    Running,
    /// Parked at an interaction point, runnable once granted.  `key` is the
    /// virtual time of the pending action: the departure time of a transmit,
    /// the consume time of a receive with a queued match, or the current
    /// clock of a non-blocking observation.
    Parked {
        /// Virtual time of the pending action, seconds.
        key: f64,
    },
    /// Blocked in a receive with no matching message queued.
    RecvBlocked {
        /// Source filter of the receive (`None` = any source).
        src: Option<usize>,
        /// Tag filter of the receive (`None` = any tag).
        tag: Option<Tag>,
        /// The receiver's virtual clock when it blocked.
        clock: f64,
    },
    /// The process closure has returned (or the process panicked).
    Finished,
}

/// Outcome of a scheduling decision over the current process states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Grant the token to this rank (the minimum-key parked process).
    Grant(usize),
    /// Some process is still running; nothing to decide yet.
    Wait,
    /// Every process is finished; nothing left to schedule.
    AllDone,
    /// No process is runnable but at least one is blocked in a receive:
    /// no message can ever be delivered again.
    Deadlock,
}

/// The conservative scheduling rule as a pure scan: if anyone is running,
/// wait; otherwise grant the parked process with the minimum `(key, rank)`;
/// if nobody is parked but someone is receive-blocked, declare deadlock.
///
/// This is the *reference* implementation.  The hot path uses [`Arbiter`],
/// which maintains the minimum incrementally; with the `oracle-checks`
/// feature (on in CI) every decision is asserted to agree with this scan.
#[cfg_attr(not(any(test, feature = "oracle-checks")), allow(dead_code))]
pub(crate) fn choose(procs: &[PState]) -> Decision {
    let mut best: Option<(f64, usize)> = None;
    let mut blocked = false;
    for (rank, p) in procs.iter().enumerate() {
        match p {
            PState::Running => return Decision::Wait,
            PState::Parked { key } => {
                // Strict `<` keeps the lowest rank on equal keys.
                if best.is_none_or(|(k, _)| *key < k) {
                    best = Some((*key, rank));
                }
            }
            PState::RecvBlocked { .. } => blocked = true,
            PState::Finished => {}
        }
    }
    match best {
        Some((_, rank)) => Decision::Grant(rank),
        None if blocked => Decision::Deadlock,
        None => Decision::AllDone,
    }
}

/// A parked process's pending-action time as a totally ordered heap key.
/// Virtual times are never NaN, so `total_cmp` is a plain numeric order.
/// Equality goes through the same total order (not IEEE `==`) so `Eq` and
/// `Ord` agree even on signed zeros.
#[derive(Debug, Clone, Copy)]
struct Key(f64);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incremental arbiter: the same scheduling rule as [`choose`], but the
/// minimum-key parked process is maintained in a lazy-deletion min-heap and
/// the `Running`/`Parked`/`RecvBlocked` populations in counters, so a
/// decision is O(log n) amortised instead of a fresh O(n) scan per
/// interaction.
///
/// Every transition into `Parked` pushes a `(key, rank)` entry; entries are
/// never eagerly removed.  An entry is *stale* once its process left the
/// parked state or re-parked under a different key; stale entries are
/// discarded when they surface at the top of the heap.  A process re-parked
/// at an identical key may be represented twice — both entries then describe
/// the same correct grant, so duplicates are harmless.
///
/// Since the island refactor this flat arbiter is the *reference*
/// implementation: the transport runs [`IslandSched`], which replays every
/// decision against a shadow `Arbiter` under the `oracle-checks` feature.
#[cfg_attr(not(any(test, feature = "oracle-checks")), allow(dead_code))]
pub(crate) struct Arbiter {
    procs: Vec<PState>,
    /// Min-heap over `(key, rank)` of (possibly stale) parked entries.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Key, usize)>>,
    running: usize,
    parked: usize,
    blocked: usize,
    /// Seeded tie-break stream; seed 0 (the default) never draws and keeps
    /// the classic lowest-rank-wins order bit for bit.
    tie: TieBreak,
}

// Outside test builds only the oracle shadow calls into the reference
// arbiter, and it needs just a subset of the surface — keep the full
// API alive for the equivalence tests without per-feature pruning.
#[cfg_attr(not(test), allow(dead_code))]
impl Arbiter {
    /// All `n` processes start `Running` (the startup prologue).  Ties break
    /// by rank (seed 0).
    #[cfg(test)]
    pub(crate) fn new(n: usize) -> Self {
        Self::with_seed(n, 0, None)
    }

    /// As [`Arbiter::new`], but with a seeded tie-break stream: when several
    /// processes park at exactly the same minimum key, the grant among them
    /// is a seeded draw instead of the lowest rank.  Every draw happens at a
    /// deterministic point of the token discipline, so a given seed still
    /// yields a bit-identical run — it just explores a different legal
    /// schedule.  `limit` caps the number of seeded draws (rank order
    /// afterwards); the shrinker bisects it.
    pub(crate) fn with_seed(n: usize, seed: u64, limit: Option<u64>) -> Self {
        Arbiter {
            procs: vec![PState::Running; n],
            heap: std::collections::BinaryHeap::with_capacity(2 * n),
            running: n,
            parked: 0,
            blocked: 0,
            tie: TieBreak::new(seed, limit),
        }
    }

    /// Seeded tie-break draws consumed so far.
    pub(crate) fn tie_draws(&self) -> u64 {
        self.tie.draws()
    }

    /// Move process `rank` into `state`, keeping the cached populations and
    /// the heap in sync.
    pub(crate) fn set(&mut self, rank: usize, state: PState) {
        match self.procs[rank] {
            PState::Running => self.running -= 1,
            PState::Parked { .. } => self.parked -= 1,
            PState::RecvBlocked { .. } => self.blocked -= 1,
            PState::Finished => {}
        }
        match state {
            PState::Running => self.running += 1,
            PState::Parked { key } => {
                self.parked += 1;
                self.heap.push(std::cmp::Reverse((Key(key), rank)));
            }
            PState::RecvBlocked { .. } => self.blocked += 1,
            PState::Finished => {}
        }
        self.procs[rank] = state;
    }

    /// Scheduler state of process `rank`.
    pub(crate) fn state(&self, rank: usize) -> PState {
        self.procs[rank]
    }

    /// The states of every process (for the wait-graph report).
    pub(crate) fn states(&self) -> &[PState] {
        &self.procs
    }

    /// Run the scheduling rule over the cached minimum.
    ///
    /// With the `oracle-checks` feature (on in CI), every decision is
    /// checked against the O(n) reference scan [`choose`]; the feature is
    /// off by default because the oracle runs on *every* scheduling
    /// decision and dominates local debug-test time.
    pub(crate) fn decide(&mut self) -> Decision {
        let decision = self.decide_inner();
        #[cfg(feature = "oracle-checks")]
        {
            let reference = choose(&self.procs);
            if self.tie.seeded() {
                // A seeded tie-break may legally grant *any* rank parked at
                // the reference minimum key; every other decision kind must
                // still agree exactly.
                match (decision, reference) {
                    (Decision::Grant(got), Decision::Grant(want)) => {
                        let min = match self.procs[want] {
                            PState::Parked { key } => key,
                            _ => unreachable!("the reference grant is parked"),
                        };
                        match self.procs[got] {
                            PState::Parked { key } if Key(key) == Key(min) => {}
                            other => panic!(
                                "seeded arbiter granted rank {got} in state {other:?}, \
                                 not parked at the reference minimum key {min}"
                            ),
                        }
                    }
                    _ => assert_eq!(
                        decision, reference,
                        "seeded arbiter diverged from the reference scan"
                    ),
                }
            } else {
                assert_eq!(
                    decision, reference,
                    "incremental arbiter diverged from the reference scan"
                );
            }
        }
        decision
    }

    fn decide_inner(&mut self) -> Decision {
        if self.running > 0 {
            return Decision::Wait;
        }
        while self.parked > 0 {
            let &std::cmp::Reverse((key, rank)) =
                self.heap.peek().expect("parked processes must be enqueued");
            match self.procs[rank] {
                PState::Parked { key: cur } if Key(cur) == key => {
                    if self.tie.seeded() {
                        return Decision::Grant(self.tie_grant(key));
                    }
                    return Decision::Grant(rank);
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
        if self.blocked > 0 {
            Decision::Deadlock
        } else {
            Decision::AllDone
        }
    }

    /// Seeded tie-break: pop every entry sharing the minimum key, draw one of
    /// the tied live ranks from the seeded stream, and re-push one live entry
    /// per candidate (confirmed-stale entries are dropped for good).  Equal
    /// keys pop in ascending rank order, so the candidate list is canonical
    /// and the draw — like everything else under the token discipline — is a
    /// pure function of the virtual-time history and the seed.
    fn tie_grant(&mut self, min: Key) -> usize {
        let mut cands: Vec<usize> = Vec::new();
        while let Some(&std::cmp::Reverse((key, rank))) = self.heap.peek() {
            if key != min {
                break;
            }
            self.heap.pop();
            if matches!(self.procs[rank], PState::Parked { key: cur } if Key(cur) == min)
                && !cands.contains(&rank)
            {
                cands.push(rank);
            }
        }
        for &rank in &cands {
            self.heap.push(std::cmp::Reverse((min, rank)));
        }
        self.tie.pick(&cands)
    }
}

/// The conservative PDES island scheduler: the scheduling rule of
/// [`Arbiter`], with the processes partitioned into contiguous rank blocks
/// (*islands*) of `ceil(n / islands)` ranks each.  Every island keeps its
/// own lazy-deletion `(key, rank)` min-heap, a count of its parked
/// processes, and a verified-live cached minimum, so a decision touches only
/// the islands whose minima are unknown — an island with zero parked
/// processes is skipped without touching its heap at all (the horizon
/// certificate: it cannot own the global minimum), and an island whose
/// cached minimum is still live answers in O(1).
///
/// # Why every width is bit-identical
///
/// The islands are contiguous ascending-rank blocks and each heap orders by
/// `(key, rank)`, so the lexicographic minimum over island minima equals the
/// flat arbiter's minimum, and walking the islands in order while collecting
/// min-key candidates yields the same globally rank-ascending candidate list
/// the flat arbiter builds.  Identical candidate lists feed identical
/// [`TieBreak`] draws, so grants — and with them virtual times, counters,
/// traces and fault draws — are bit-identical for every `islands` width.
/// Under the `oracle-checks` feature this is asserted live: a shadow flat
/// [`Arbiter`] (itself checked against the [`choose`] scan) mirrors every
/// transition and every decision is compared exactly.
///
/// # The lookahead bound
///
/// The minimum cross-island link latency is the classic conservative-PDES
/// lookahead: a message transmitted at departure time `d` arrives no earlier
/// than `d + latency` (occupancy, shared-medium queueing and injected fault
/// delay only push arrivals later, and floating-point addition of
/// non-negative terms is monotone, so the bound is exact in f64).  Under the
/// token discipline a transmit is performed by the holder of the most recent
/// grant, whose grant key *is* the departure time, so every cross-island
/// promotion of a blocked receiver lands at or beyond
/// `last_grant + lookahead`.  [`IslandSched::set`] carries a `debug_assert`
/// of exactly that certificate.
pub(crate) struct IslandSched {
    procs: Vec<PState>,
    /// Ranks per island: island of `rank` is `rank / block` (contiguous
    /// blocks, so within-island rank order is global rank order).
    block: usize,
    /// Per-island min-heaps over `(key, rank)` of (possibly stale) parked
    /// entries, with the same lazy-deletion discipline as [`Arbiter`].
    heaps: Vec<std::collections::BinaryHeap<std::cmp::Reverse<(Key, usize)>>>,
    /// Number of `Parked` processes per island.  Zero means the island
    /// cannot own the global minimum and its heap is not touched.
    island_parked: Vec<usize>,
    /// Last verified live minimum per island: `Some((key, rank))` only while
    /// `procs[rank]` is still parked at `key` (transitions of the cached
    /// rank clear it; a smaller fresh entry overwrites it), `None` when it
    /// must be recomputed from the heap.
    min_cache: Vec<Option<(Key, usize)>>,
    running: usize,
    parked: usize,
    blocked: usize,
    /// Seeded tie-break stream; advances in lockstep with the shadow
    /// arbiter's because both see identical candidate lists.
    tie: TieBreak,
    /// Conservative lookahead, seconds: the minimum link latency of the
    /// network model.  Promotions of blocked receivers must land at or
    /// beyond `last_grant + lookahead`.
    lookahead: f64,
    /// Key of the most recent grant (`None` until the startup prologue ends
    /// with the first grant).
    last_grant: Option<f64>,
    /// Batched-arbitration cache from the last full cross-island scan:
    /// `(favoured_island, runner_up)`, where `runner_up` is the smallest
    /// `(key, rank)` parked outside the favoured island (`None` when no
    /// other island had a parked member).  Valid only while every `set`
    /// since the scan touched the favoured island alone; while the favoured
    /// island's minimum stays strictly below the runner-up, a whole run of
    /// same-island minimum-key grants is issued without re-scanning the
    /// other islands.  Ranks are globally unique and islands are ascending
    /// rank blocks, so the `(key, rank)` tuple order *is* the flat arbiter's
    /// tie-break order and the strict comparison is exact.
    run_cache: Option<(usize, Option<(Key, usize)>)>,
    #[cfg(feature = "oracle-checks")]
    shadow: Arbiter,
}

impl IslandSched {
    /// All `n` processes start `Running`, partitioned into `islands`
    /// contiguous rank blocks.  `islands` is normalised: `0` means `1`, and
    /// widths above `n` clamp to `n` (one process per island).  `seed` and
    /// `limit` configure the tie-break stream exactly as in
    /// [`Arbiter::with_seed`]; `lookahead` is the minimum link latency.
    pub(crate) fn new(
        n: usize,
        islands: usize,
        seed: u64,
        limit: Option<u64>,
        lookahead: f64,
    ) -> Self {
        let islands = islands.clamp(1, n.max(1));
        let block = n.max(1).div_ceil(islands);
        // Re-derive the island count from the block size: rounding the
        // block up can leave trailing islands empty (n=9, islands=4 gives
        // blocks of 3 and only 3 islands).
        let k = n.max(1).div_ceil(block);
        IslandSched {
            procs: vec![PState::Running; n],
            block,
            heaps: (0..k)
                .map(|_| std::collections::BinaryHeap::with_capacity(2 * block))
                .collect(),
            island_parked: vec![0; k],
            min_cache: vec![None; k],
            running: n,
            parked: 0,
            blocked: 0,
            tie: TieBreak::new(seed, limit),
            lookahead,
            last_grant: None,
            run_cache: None,
            #[cfg(feature = "oracle-checks")]
            shadow: Arbiter::with_seed(n, seed, limit),
        }
    }

    /// The actual number of islands (after normalisation and clamping).
    #[cfg(test)]
    pub(crate) fn islands(&self) -> usize {
        self.heaps.len()
    }

    /// Seeded tie-break draws consumed so far.
    pub(crate) fn tie_draws(&self) -> u64 {
        self.tie.draws()
    }

    /// Move process `rank` into `state`, keeping the island bookkeeping (and
    /// the shadow arbiter, under `oracle-checks`) in sync.
    pub(crate) fn set(&mut self, rank: usize, state: PState) {
        // The conservative horizon certificate: a blocked receiver is only
        // ever promoted by a transmit, the transmit is performed by the
        // holder of the most recent grant, and its grant key is the
        // departure time — so the promotion key is at least
        // `last_grant + lookahead` (exact in f64: arrivals add only
        // non-negative terms to the departure, and fl-addition is monotone).
        if let (PState::RecvBlocked { .. }, PState::Parked { key }) = (self.procs[rank], state) {
            if let Some(last) = self.last_grant {
                debug_assert!(
                    key >= last + self.lookahead,
                    "promotion of rank {rank} below the conservative horizon: \
                     key {key} < last grant {last} + lookahead {}",
                    self.lookahead
                );
            }
        }
        let island = rank / self.block;
        // A transition outside the favoured island (a cross-island promotion
        // or park) can lower another island's minimum: the cached runner-up
        // bound no longer certifies the favoured island owns the global
        // minimum.
        if self.run_cache.is_some_and(|(fav, _)| fav != island) {
            self.run_cache = None;
        }
        match self.procs[rank] {
            PState::Running => self.running -= 1,
            PState::Parked { .. } => {
                self.parked -= 1;
                self.island_parked[island] -= 1;
                if self.min_cache[island].is_some_and(|(_, r)| r == rank) {
                    self.min_cache[island] = None;
                }
            }
            PState::RecvBlocked { .. } => self.blocked -= 1,
            PState::Finished => {}
        }
        match state {
            PState::Running => self.running += 1,
            PState::Parked { key } => {
                self.parked += 1;
                self.island_parked[island] += 1;
                let entry = (Key(key), rank);
                self.heaps[island].push(std::cmp::Reverse(entry));
                // A known live minimum stays correct unless the fresh entry
                // beats it (removals of other ranks can only raise the min).
                if let Some(cached) = self.min_cache[island] {
                    if entry < cached {
                        self.min_cache[island] = Some(entry);
                    }
                }
            }
            PState::RecvBlocked { .. } => self.blocked += 1,
            PState::Finished => {}
        }
        self.procs[rank] = state;
        #[cfg(feature = "oracle-checks")]
        self.shadow.set(rank, state);
    }

    /// Scheduler state of process `rank`.
    pub(crate) fn state(&self, rank: usize) -> PState {
        self.procs[rank]
    }

    /// The states of every process (for the wait-graph report).
    pub(crate) fn states(&self) -> &[PState] {
        &self.procs
    }

    /// Run the scheduling rule over the island minima.
    ///
    /// With the `oracle-checks` feature (on in CI), every decision is
    /// replayed on the shadow flat [`Arbiter`] — which itself checks against
    /// the O(n) scan [`choose`] — and asserted *exactly* equal, seeded
    /// tie-breaks included (identical candidate lists drive identical
    /// draws).
    pub(crate) fn decide(&mut self) -> Decision {
        let decision = self.decide_inner();
        #[cfg(feature = "oracle-checks")]
        {
            let reference = self.shadow.decide();
            assert_eq!(
                decision, reference,
                "island scheduler diverged from the reference arbiter"
            );
        }
        decision
    }

    fn decide_inner(&mut self) -> Decision {
        if self.running > 0 {
            return Decision::Wait;
        }
        if self.parked == 0 {
            return if self.blocked > 0 {
                Decision::Deadlock
            } else {
                Decision::AllDone
            };
        }
        // Batched arbitration: while the favoured island's minimum stays
        // strictly below every other island's (certified by the cached
        // runner-up bound), grant it directly — a run of same-island
        // minimum-key grants costs one cross-island scan total.  Seeded
        // ties must see the full cross-island candidate list, so they
        // always take the scan.
        if !self.tie.seeded() {
            if let Some((fav, bound)) = self.run_cache {
                if self.island_parked[fav] > 0 {
                    let min = self.island_min(fav);
                    if bound.is_none_or(|b| min < b) {
                        self.last_grant = Some(min.0 .0);
                        return Decision::Grant(min.1);
                    }
                }
            }
        }
        let mut best: Option<(usize, (Key, usize))> = None;
        let mut runner_up: Option<(Key, usize)> = None;
        for island in 0..self.heaps.len() {
            if self.island_parked[island] == 0 {
                continue;
            }
            let min = self.island_min(island);
            match best {
                Some((_, bmin)) if min >= bmin => {
                    if runner_up.is_none_or(|r| min < r) {
                        runner_up = Some(min);
                    }
                }
                _ => {
                    runner_up = best.map(|(_, bmin)| bmin);
                    best = Some((island, min));
                }
            }
        }
        let (fav, (key, rank)) =
            best.expect("an island with parked processes owns the minimum");
        self.run_cache = Some((fav, runner_up));
        let granted = if self.tie.seeded() {
            self.tie_grant(key)
        } else {
            rank
        };
        self.last_grant = Some(key.0);
        Decision::Grant(granted)
    }

    /// The live `(key, rank)` minimum of one island (which must have at
    /// least one parked process): the cached minimum if still live,
    /// otherwise the island heap's top after discarding stale entries.
    fn island_min(&mut self, island: usize) -> (Key, usize) {
        if let Some((key, rank)) = self.min_cache[island] {
            if matches!(self.procs[rank], PState::Parked { key: cur } if Key(cur) == key) {
                return (key, rank);
            }
            self.min_cache[island] = None;
        }
        loop {
            let &std::cmp::Reverse((key, rank)) = self.heaps[island]
                .peek()
                .expect("an island with parked processes has a live entry");
            match self.procs[rank] {
                PState::Parked { key: cur } if Key(cur) == key => {
                    self.min_cache[island] = Some((key, rank));
                    return (key, rank);
                }
                _ => {
                    self.heaps[island].pop();
                }
            }
        }
    }

    /// Seeded tie-break across islands: walk the islands in order, popping
    /// every entry sharing the minimum key (within an island equal keys pop
    /// in ascending rank order, and islands are ascending rank blocks, so
    /// the concatenated candidate list is globally rank-ascending — exactly
    /// the flat arbiter's canonical list), re-push the live candidates, and
    /// draw from the seeded stream.
    fn tie_grant(&mut self, min: Key) -> usize {
        let mut cands: Vec<usize> = Vec::new();
        for island in 0..self.heaps.len() {
            if self.island_parked[island] == 0 {
                continue;
            }
            let first = cands.len();
            while let Some(&std::cmp::Reverse((key, rank))) = self.heaps[island].peek() {
                if key != min {
                    break;
                }
                self.heaps[island].pop();
                if matches!(self.procs[rank], PState::Parked { key: cur } if Key(cur) == min)
                    && !cands[first..].contains(&rank)
                {
                    cands.push(rank);
                }
            }
            for &rank in &cands[first..] {
                self.heaps[island].push(std::cmp::Reverse((min, rank)));
            }
        }
        self.tie.pick(&cands)
    }
}

/// Render the wait graph of a deadlocked cluster: every process's scheduler
/// state, the filter each blocked receiver is waiting on, and the messages
/// sitting undeliverable in its mailbox.
pub(crate) fn wait_graph(
    procs: &[PState],
    mailboxes: &[std::collections::VecDeque<Message>],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "virtual-time deadlock: every process is blocked with no deliverable message\n",
    );
    for (rank, p) in procs.iter().enumerate() {
        match p {
            PState::RecvBlocked { src, tag, clock } => {
                let queued: Vec<(usize, Tag, f64)> = mailboxes[rank]
                    .iter()
                    .map(|m| (m.src, m.tag, m.arrival))
                    .collect();
                let _ = writeln!(
                    out,
                    "  process {rank}: blocked at t={clock:.6} waiting for src={src:?} tag={tag:?}; \
                     queued (src, tag, arrival): {queued:?}"
                );
            }
            PState::Finished => {
                let _ = writeln!(out, "  process {rank}: finished");
            }
            other => {
                let _ = writeln!(out, "  process {rank}: {other:?}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_minimum_key() {
        let procs = vec![
            PState::Parked { key: 2.0 },
            PState::Parked { key: 1.0 },
            PState::Parked { key: 3.0 },
        ];
        assert_eq!(choose(&procs), Decision::Grant(1));
    }

    #[test]
    fn ties_break_by_rank() {
        let procs = vec![PState::Parked { key: 1.0 }, PState::Parked { key: 1.0 }];
        assert_eq!(choose(&procs), Decision::Grant(0));
    }

    #[test]
    fn waits_while_anyone_runs() {
        let procs = vec![PState::Parked { key: 0.0 }, PState::Running];
        assert_eq!(choose(&procs), Decision::Wait);
    }

    #[test]
    fn blocked_processes_are_not_runnable() {
        let procs = vec![
            PState::RecvBlocked {
                src: None,
                tag: None,
                clock: 0.0,
            },
            PState::Parked { key: 9.0 },
        ];
        assert_eq!(choose(&procs), Decision::Grant(1));
    }

    #[test]
    fn all_blocked_is_a_deadlock() {
        let procs = vec![
            PState::RecvBlocked {
                src: Some(1),
                tag: Some(7),
                clock: 1.5,
            },
            PState::Finished,
        ];
        assert_eq!(choose(&procs), Decision::Deadlock);
    }

    #[test]
    fn all_finished_is_done() {
        assert_eq!(
            choose(&[PState::Finished, PState::Finished]),
            Decision::AllDone
        );
    }

    #[test]
    fn arbiter_tracks_the_reference_scan_through_random_transitions() {
        // Drive an Arbiter through a long pseudo-random transition sequence
        // and require its decision to equal the O(n) reference scan at every
        // step (release builds included — this is the release-mode version
        // of the debug_assert in `decide`).
        let n = 5;
        let mut arb = Arbiter::new(n);
        // lint:allow(prng): seeded test driver, same sequence every run
        let mut rng = crate::fault::SplitMix64::seeded(0x5eed);
        let mut next = || rng.next_u64() >> 33;
        for step in 0..4000 {
            let rank = next() as usize % n;
            let state = match next() % 4 {
                0 => PState::Running,
                1 => PState::Parked {
                    key: (next() % 16) as f64 * 0.25,
                },
                2 => PState::RecvBlocked {
                    src: None,
                    tag: None,
                    clock: 0.0,
                },
                _ => PState::Finished,
            };
            arb.set(rank, state);
            assert_eq!(
                arb.decide(),
                choose(arb.states()),
                "divergence at step {step}"
            );
        }
    }

    #[test]
    fn arbiter_discards_stale_entries_and_grants_the_new_minimum() {
        let mut arb = Arbiter::new(3);
        arb.set(0, PState::Parked { key: 1.0 });
        arb.set(1, PState::Parked { key: 2.0 });
        arb.set(2, PState::Parked { key: 3.0 });
        assert_eq!(arb.decide(), Decision::Grant(0));
        // Re-park process 0 *behind* the others: its old key-1.0 entry is
        // stale and must not win again.
        arb.set(0, PState::Parked { key: 9.0 });
        assert_eq!(arb.decide(), Decision::Grant(1));
        arb.set(1, PState::Finished);
        assert_eq!(arb.decide(), Decision::Grant(2));
        arb.set(2, PState::Running);
        assert_eq!(arb.decide(), Decision::Wait);
    }

    #[test]
    fn seed_zero_arbiter_is_exactly_rank_order() {
        // `with_seed(n, 0, _)` must be indistinguishable from `new(n)`:
        // identical grants on identical transition sequences, zero draws.
        let n = 4;
        let mut plain = Arbiter::new(n);
        let mut seeded = Arbiter::with_seed(n, 0, None);
        // lint:allow(prng): seeded test driver, same sequence every run
        let mut rng = crate::fault::SplitMix64::seeded(7);
        for _ in 0..2000 {
            let rank = rng.next_u64() as usize % n;
            let state = match rng.next_u64() % 3 {
                0 => PState::Running,
                1 => PState::Parked {
                    key: (rng.next_u64() % 4) as f64 * 0.5,
                },
                _ => PState::Finished,
            };
            plain.set(rank, state);
            seeded.set(rank, state);
            assert_eq!(plain.decide(), seeded.decide());
        }
        assert_eq!(seeded.tie_draws(), 0);
    }

    #[test]
    fn seeded_grant_is_always_a_minimum_key_candidate() {
        // Under any nonzero seed the grant must still be one of the ranks
        // parked at the reference scan's minimum key — a different legal
        // schedule, never an illegal one.
        for seed in 1..6u64 {
            let n = 5;
            let mut arb = Arbiter::with_seed(n, seed, None);
            // lint:allow(prng): seeded test driver, same sequence every run
            let mut rng = crate::fault::SplitMix64::seeded(seed ^ 0xabcd);
            for step in 0..2000 {
                let rank = rng.next_u64() as usize % n;
                let state = match rng.next_u64() % 4 {
                    0 => PState::Running,
                    1 => PState::Parked {
                        // Few distinct keys force frequent ties.
                        key: (rng.next_u64() % 3) as f64 * 0.25,
                    },
                    2 => PState::RecvBlocked {
                        src: None,
                        tag: None,
                        clock: 0.0,
                    },
                    _ => PState::Finished,
                };
                arb.set(rank, state);
                let decision = arb.decide();
                let reference = choose(arb.states());
                match (decision, reference) {
                    (Decision::Grant(got), Decision::Grant(want)) => {
                        let min = match arb.state(want) {
                            PState::Parked { key } => key,
                            other => panic!("reference grant not parked: {other:?}"),
                        };
                        match arb.state(got) {
                            PState::Parked { key } if key.total_cmp(&min).is_eq() => {}
                            other => panic!(
                                "seed {seed} step {step}: granted {got} in {other:?}, min {min}"
                            ),
                        }
                    }
                    (got, want) => assert_eq!(got, want, "seed {seed} step {step}"),
                }
            }
        }
    }

    #[test]
    fn seeded_ties_diverge_from_rank_order_and_replay_identically() {
        // A tie over all ranks: seed 0 grants rank 0; some nonzero seed must
        // grant someone else (otherwise the knob does nothing), and the same
        // seed must pick the same rank on a fresh arbiter (replayability).
        let grant_of = |seed: u64| {
            let mut arb = Arbiter::with_seed(6, seed, None);
            for r in 0..6 {
                arb.set(r, PState::Parked { key: 1.0 });
            }
            match arb.decide() {
                Decision::Grant(r) => r,
                other => panic!("expected a grant, got {other:?}"),
            }
        };
        assert_eq!(grant_of(0), 0);
        assert!(
            (1..20).any(|s| grant_of(s) != 0),
            "no seed in 1..20 ever deviated from rank order on a 6-way tie"
        );
        for seed in 1..20 {
            assert_eq!(grant_of(seed), grant_of(seed), "seed {seed} not replayable");
        }
    }

    #[test]
    fn tie_limit_zero_is_rank_order() {
        let mut arb = Arbiter::with_seed(4, 99, Some(0));
        for r in 0..4 {
            arb.set(r, PState::Parked { key: 2.0 });
        }
        assert_eq!(arb.decide(), Decision::Grant(0));
        assert_eq!(arb.tie_draws(), 0);
    }

    /// Drive a transition generator shared by the island property tests:
    /// `f(step, rank, state)` for a deterministic pseudo-random sequence.
    fn drive(seed: u64, n: usize, steps: usize, mut f: impl FnMut(usize, usize, PState)) {
        // lint:allow(prng): seeded test driver, same sequence every run
        let mut rng = crate::fault::SplitMix64::seeded(seed);
        for step in 0..steps {
            let rank = rng.next_u64() as usize % n;
            let state = match rng.next_u64() % 4 {
                0 => PState::Running,
                1 => PState::Parked {
                    // Few distinct keys force frequent ties.
                    key: (rng.next_u64() % 8) as f64 * 0.25,
                },
                2 => PState::RecvBlocked {
                    src: None,
                    tag: None,
                    clock: 0.0,
                },
                _ => PState::Finished,
            };
            f(step, rank, state);
        }
    }

    /// Arbitrary transition sequences promote blocked receivers at keys the
    /// real transport never produces, so the property tests disable the
    /// conservative-horizon `debug_assert` by driving the lookahead to -∞.
    const NO_HORIZON: f64 = f64::NEG_INFINITY;

    #[test]
    fn island_widths_are_normalised_and_clamped() {
        assert_eq!(IslandSched::new(8, 0, 0, None, NO_HORIZON).islands(), 1);
        assert_eq!(IslandSched::new(8, 1, 0, None, NO_HORIZON).islands(), 1);
        assert_eq!(IslandSched::new(8, 4, 0, None, NO_HORIZON).islands(), 4);
        assert_eq!(IslandSched::new(8, 100, 0, None, NO_HORIZON).islands(), 8);
        // Rounding the block up can merge trailing islands: 9 ranks over 4
        // islands gives blocks of 3 and only 3 islands.
        assert_eq!(IslandSched::new(9, 4, 0, None, NO_HORIZON).islands(), 3);
    }

    #[test]
    fn every_island_width_matches_the_flat_arbiter_exactly() {
        // The core bit-identity property: for any width, seeded or not, the
        // island scheduler's decisions and draw counts equal the flat
        // arbiter's on the same transition sequence, step for step.
        let n = 8;
        for seed in [0u64, 3, 11] {
            for islands in [1usize, 2, 3, 4, 5, 8] {
                let mut flat = Arbiter::with_seed(n, seed, None);
                let mut isle = IslandSched::new(n, islands, seed, None, NO_HORIZON);
                drive(
                    0xd15c0 ^ seed ^ ((islands as u64) << 32),
                    n,
                    3000,
                    |step, rank, state| {
                        flat.set(rank, state);
                        isle.set(rank, state);
                        assert_eq!(
                            isle.decide(),
                            flat.decide(),
                            "seed {seed} islands {islands} step {step}"
                        );
                    },
                );
                assert_eq!(isle.tie_draws(), flat.tie_draws());
            }
        }
    }

    #[test]
    fn seed_zero_island_sched_is_exactly_the_reference_scan() {
        // Property form of the seed-0 ≡ rank-order guarantee, for the
        // island scheduler: at seed 0 every decision equals the O(n) scan
        // and no draw is ever consumed, at any width.
        let n = 6;
        for islands in [1usize, 2, 3, 6] {
            let mut isle = IslandSched::new(n, islands, 0, None, NO_HORIZON);
            drive(42 + islands as u64, n, 3000, |step, rank, state| {
                isle.set(rank, state);
                assert_eq!(
                    isle.decide(),
                    choose(isle.states()),
                    "islands {islands} step {step}"
                );
            });
            assert_eq!(isle.tie_draws(), 0);
        }
    }

    #[test]
    fn seeded_tie_breaks_are_roughly_uniform_over_the_candidates() {
        // Across many seeds, a 6-way minimum-key tie must spread its grants
        // roughly uniformly over the tied ranks — the draw may not favour
        // rank order (the seed-0 behaviour) or any island.  1800 seeds at
        // 1/6 each give an expectation of 300 per rank with σ ≈ 15.8; the
        // [230, 370] window is ±4.4σ, and the whole experiment is
        // deterministic, so the test cannot flake once green.
        for islands in [1usize, 3] {
            let mut counts = [0usize; 6];
            for seed in 1..=1800u64 {
                let mut isle = IslandSched::new(6, islands, seed, None, NO_HORIZON);
                for r in 0..6 {
                    isle.set(r, PState::Parked { key: 1.0 });
                }
                match isle.decide() {
                    Decision::Grant(r) => counts[r] += 1,
                    other => panic!("expected a grant, got {other:?}"),
                }
            }
            assert_eq!(counts.iter().sum::<usize>(), 1800);
            for (rank, &c) in counts.iter().enumerate() {
                assert!(
                    (230..=370).contains(&c),
                    "islands {islands}: rank {rank} granted {c} times of 1800 \
                     ({counts:?}); a uniform draw expects ~300"
                );
            }
        }
    }

    #[test]
    fn island_tie_candidates_concatenate_in_global_rank_order() {
        // A cross-island tie: ranks 1 (island 0) and 4 (island 1) parked at
        // the same key.  The candidate list must be [1, 4] in global rank
        // order, so seed 0 grants rank 1 — and a seeded draw picks from the
        // same canonical list the flat arbiter builds.
        let mut isle = IslandSched::new(6, 2, 0, None, NO_HORIZON);
        for r in 0..6 {
            isle.set(r, PState::Finished);
        }
        isle.set(4, PState::Parked { key: 2.0 });
        isle.set(1, PState::Parked { key: 2.0 });
        assert_eq!(isle.decide(), Decision::Grant(1));
        for seed in 1..40u64 {
            let mut flat = Arbiter::with_seed(6, seed, None);
            let mut isle = IslandSched::new(6, 2, seed, None, NO_HORIZON);
            for r in 0..6 {
                flat.set(r, PState::Finished);
                isle.set(r, PState::Finished);
            }
            for r in [4usize, 1, 5] {
                flat.set(r, PState::Parked { key: 2.0 });
                isle.set(r, PState::Parked { key: 2.0 });
            }
            assert_eq!(isle.decide(), flat.decide(), "seed {seed}");
        }
    }

    #[test]
    fn same_island_runs_use_and_invalidate_the_batch_cache() {
        // Island 0 (ranks 0..3) owns a run of ascending keys strictly below
        // island 1's minimum: after one full scan, every grant in the run
        // must come from the batch cache and still match the reference scan.
        let mut isle = IslandSched::new(6, 2, 0, None, NO_HORIZON);
        for r in 0..3 {
            isle.set(r, PState::Parked { key: r as f64 });
        }
        for r in 3..6 {
            isle.set(r, PState::Parked { key: 100.0 });
        }
        for expect in 0..3 {
            assert_eq!(isle.decide(), Decision::Grant(expect));
            assert_eq!(choose(isle.states()), Decision::Grant(expect));
            isle.set(expect, PState::Running);
            isle.set(expect, PState::Finished);
        }
        // Cross-island park below the cached runner-up: the cache must be
        // invalidated, not trusted.
        isle.set(0, PState::Parked { key: 50.0 });
        isle.set(4, PState::Parked { key: 10.0 });
        assert_eq!(isle.decide(), Decision::Grant(4));
        isle.set(4, PState::Finished);
        assert_eq!(isle.decide(), Decision::Grant(0));
    }

    #[test]
    fn promotions_at_or_beyond_the_horizon_are_accepted() {
        // last grant at key 1.0, lookahead 0.5: a blocked receiver promoted
        // to exactly the horizon (1.5) is legal.
        let mut isle = IslandSched::new(2, 2, 0, None, 0.5);
        isle.set(0, PState::Parked { key: 1.0 });
        isle.set(
            1,
            PState::RecvBlocked {
                src: None,
                tag: None,
                clock: 0.0,
            },
        );
        assert_eq!(isle.decide(), Decision::Grant(0));
        isle.set(1, PState::Parked { key: 1.5 });
        isle.set(0, PState::Finished);
        assert_eq!(isle.decide(), Decision::Grant(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "below the conservative horizon")]
    fn promotions_below_the_horizon_are_rejected() {
        let mut isle = IslandSched::new(2, 2, 0, None, 0.5);
        isle.set(0, PState::Parked { key: 1.0 });
        isle.set(
            1,
            PState::RecvBlocked {
                src: None,
                tag: None,
                clock: 0.0,
            },
        );
        assert_eq!(isle.decide(), Decision::Grant(0));
        // 1.2 < 1.0 + 0.5: no in-model message can arrive this early.
        isle.set(1, PState::Parked { key: 1.2 });
    }

    #[test]
    fn wait_graph_names_the_blocked_filter() {
        let procs = vec![PState::RecvBlocked {
            src: Some(3),
            tag: Some(9),
            clock: 0.25,
        }];
        let graph = wait_graph(&procs, &[std::collections::VecDeque::new()]);
        assert!(graph.contains("process 0"));
        assert!(graph.contains("src=Some(3)"));
        assert!(graph.contains("tag=Some(9)"));
    }
}

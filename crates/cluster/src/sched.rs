//! Conservative virtual-time arbitration: the pure decision logic of the
//! deterministic discrete-event scheduler.
//!
//! The simulated cluster runs one OS thread per process, but OS thread
//! interleaving must never influence the *virtual-time* outcome: every
//! arrival time, idle time and message counter the paper's tables report has
//! to be a pure function of the program and the cost model.  The transport
//! therefore executes all shared-state interactions (seizing the shared
//! medium, consuming or observing a mailbox) under a token discipline:
//!
//! * Between interactions a process runs freely — computation only touches
//!   its own virtual clock.
//! * At an interaction it *parks*, announcing the virtual time of its
//!   pending action (its key), and waits.
//! * When no process is running, the arbiter grants the token to the parked
//!   process with the **minimum key**, ties broken by rank.  Only the token
//!   holder may act, so the global order of transmissions and mailbox
//!   observations is a deterministic function of virtual timestamps.
//! * A process blocked in a receive with no matching message is not
//!   runnable; it is promoted to a parked state (keyed by the time it would
//!   consume the message) the moment a matching message is transmitted.
//!
//! This is the classic conservative (Chandy-Misra style) execution rule
//! specialised to a star topology: granting the minimum virtual time is safe
//! because every future action of a process with a later key carries a later
//! or equal timestamp, and interrupt-style replies (which *can* depart in
//! the past, like a SIGIO handler answering at the request's arrival time)
//! are themselves ordered by the deterministic grant sequence.
//!
//! When no process is runnable and at least one is blocked in a receive, no
//! message can ever be delivered again: that is a protocol deadlock, detected
//! immediately and reported with the full wait graph (instead of the
//! wall-clock timeout heuristic this module replaces).

use crate::fault::TieBreak;
use crate::net::{Message, Tag};

/// Scheduler state of one simulated process.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PState {
    /// Executing user code (holds the token after startup; during the
    /// startup prologue every process is `Running` until its first
    /// interaction).
    Running,
    /// Parked at an interaction point, runnable once granted.  `key` is the
    /// virtual time of the pending action: the departure time of a transmit,
    /// the consume time of a receive with a queued match, or the current
    /// clock of a non-blocking observation.
    Parked {
        /// Virtual time of the pending action, seconds.
        key: f64,
    },
    /// Blocked in a receive with no matching message queued.
    RecvBlocked {
        /// Source filter of the receive (`None` = any source).
        src: Option<usize>,
        /// Tag filter of the receive (`None` = any tag).
        tag: Option<Tag>,
        /// The receiver's virtual clock when it blocked.
        clock: f64,
    },
    /// The process closure has returned (or the process panicked).
    Finished,
}

/// Outcome of a scheduling decision over the current process states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Grant the token to this rank (the minimum-key parked process).
    Grant(usize),
    /// Some process is still running; nothing to decide yet.
    Wait,
    /// Every process is finished; nothing left to schedule.
    AllDone,
    /// No process is runnable but at least one is blocked in a receive:
    /// no message can ever be delivered again.
    Deadlock,
}

/// The conservative scheduling rule as a pure scan: if anyone is running,
/// wait; otherwise grant the parked process with the minimum `(key, rank)`;
/// if nobody is parked but someone is receive-blocked, declare deadlock.
///
/// This is the *reference* implementation.  The hot path uses [`Arbiter`],
/// which maintains the minimum incrementally; with the `oracle-checks`
/// feature (on in CI) every decision is asserted to agree with this scan.
#[cfg_attr(not(any(test, feature = "oracle-checks")), allow(dead_code))]
pub(crate) fn choose(procs: &[PState]) -> Decision {
    let mut best: Option<(f64, usize)> = None;
    let mut blocked = false;
    for (rank, p) in procs.iter().enumerate() {
        match p {
            PState::Running => return Decision::Wait,
            PState::Parked { key } => {
                // Strict `<` keeps the lowest rank on equal keys.
                if best.is_none_or(|(k, _)| *key < k) {
                    best = Some((*key, rank));
                }
            }
            PState::RecvBlocked { .. } => blocked = true,
            PState::Finished => {}
        }
    }
    match best {
        Some((_, rank)) => Decision::Grant(rank),
        None if blocked => Decision::Deadlock,
        None => Decision::AllDone,
    }
}

/// A parked process's pending-action time as a totally ordered heap key.
/// Virtual times are never NaN, so `total_cmp` is a plain numeric order.
/// Equality goes through the same total order (not IEEE `==`) so `Eq` and
/// `Ord` agree even on signed zeros.
#[derive(Debug, Clone, Copy)]
struct Key(f64);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incremental arbiter: the same scheduling rule as [`choose`], but the
/// minimum-key parked process is maintained in a lazy-deletion min-heap and
/// the `Running`/`Parked`/`RecvBlocked` populations in counters, so a
/// decision is O(log n) amortised instead of a fresh O(n) scan per
/// interaction.
///
/// Every transition into `Parked` pushes a `(key, rank)` entry; entries are
/// never eagerly removed.  An entry is *stale* once its process left the
/// parked state or re-parked under a different key; stale entries are
/// discarded when they surface at the top of the heap.  A process re-parked
/// at an identical key may be represented twice — both entries then describe
/// the same correct grant, so duplicates are harmless.
pub(crate) struct Arbiter {
    procs: Vec<PState>,
    /// Min-heap over `(key, rank)` of (possibly stale) parked entries.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Key, usize)>>,
    running: usize,
    parked: usize,
    blocked: usize,
    /// Seeded tie-break stream; seed 0 (the default) never draws and keeps
    /// the classic lowest-rank-wins order bit for bit.
    tie: TieBreak,
}

impl Arbiter {
    /// All `n` processes start `Running` (the startup prologue).  Ties break
    /// by rank (seed 0).
    #[cfg(test)]
    pub(crate) fn new(n: usize) -> Self {
        Self::with_seed(n, 0, None)
    }

    /// As [`Arbiter::new`], but with a seeded tie-break stream: when several
    /// processes park at exactly the same minimum key, the grant among them
    /// is a seeded draw instead of the lowest rank.  Every draw happens at a
    /// deterministic point of the token discipline, so a given seed still
    /// yields a bit-identical run — it just explores a different legal
    /// schedule.  `limit` caps the number of seeded draws (rank order
    /// afterwards); the shrinker bisects it.
    pub(crate) fn with_seed(n: usize, seed: u64, limit: Option<u64>) -> Self {
        Arbiter {
            procs: vec![PState::Running; n],
            heap: std::collections::BinaryHeap::with_capacity(2 * n),
            running: n,
            parked: 0,
            blocked: 0,
            tie: TieBreak::new(seed, limit),
        }
    }

    /// Seeded tie-break draws consumed so far.
    pub(crate) fn tie_draws(&self) -> u64 {
        self.tie.draws()
    }

    /// Move process `rank` into `state`, keeping the cached populations and
    /// the heap in sync.
    pub(crate) fn set(&mut self, rank: usize, state: PState) {
        match self.procs[rank] {
            PState::Running => self.running -= 1,
            PState::Parked { .. } => self.parked -= 1,
            PState::RecvBlocked { .. } => self.blocked -= 1,
            PState::Finished => {}
        }
        match state {
            PState::Running => self.running += 1,
            PState::Parked { key } => {
                self.parked += 1;
                self.heap.push(std::cmp::Reverse((Key(key), rank)));
            }
            PState::RecvBlocked { .. } => self.blocked += 1,
            PState::Finished => {}
        }
        self.procs[rank] = state;
    }

    /// Scheduler state of process `rank`.
    pub(crate) fn state(&self, rank: usize) -> PState {
        self.procs[rank]
    }

    /// The states of every process (for the wait-graph report).
    pub(crate) fn states(&self) -> &[PState] {
        &self.procs
    }

    /// Run the scheduling rule over the cached minimum.
    ///
    /// With the `oracle-checks` feature (on in CI), every decision is
    /// checked against the O(n) reference scan [`choose`]; the feature is
    /// off by default because the oracle runs on *every* scheduling
    /// decision and dominates local debug-test time.
    pub(crate) fn decide(&mut self) -> Decision {
        let decision = self.decide_inner();
        #[cfg(feature = "oracle-checks")]
        {
            let reference = choose(&self.procs);
            if self.tie.seeded() {
                // A seeded tie-break may legally grant *any* rank parked at
                // the reference minimum key; every other decision kind must
                // still agree exactly.
                match (decision, reference) {
                    (Decision::Grant(got), Decision::Grant(want)) => {
                        let min = match self.procs[want] {
                            PState::Parked { key } => key,
                            _ => unreachable!("the reference grant is parked"),
                        };
                        match self.procs[got] {
                            PState::Parked { key } if Key(key) == Key(min) => {}
                            other => panic!(
                                "seeded arbiter granted rank {got} in state {other:?}, \
                                 not parked at the reference minimum key {min}"
                            ),
                        }
                    }
                    _ => assert_eq!(
                        decision, reference,
                        "seeded arbiter diverged from the reference scan"
                    ),
                }
            } else {
                assert_eq!(
                    decision, reference,
                    "incremental arbiter diverged from the reference scan"
                );
            }
        }
        decision
    }

    fn decide_inner(&mut self) -> Decision {
        if self.running > 0 {
            return Decision::Wait;
        }
        while self.parked > 0 {
            let &std::cmp::Reverse((key, rank)) =
                self.heap.peek().expect("parked processes must be enqueued");
            match self.procs[rank] {
                PState::Parked { key: cur } if Key(cur) == key => {
                    if self.tie.seeded() {
                        return Decision::Grant(self.tie_grant(key));
                    }
                    return Decision::Grant(rank);
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
        if self.blocked > 0 {
            Decision::Deadlock
        } else {
            Decision::AllDone
        }
    }

    /// Seeded tie-break: pop every entry sharing the minimum key, draw one of
    /// the tied live ranks from the seeded stream, and re-push one live entry
    /// per candidate (confirmed-stale entries are dropped for good).  Equal
    /// keys pop in ascending rank order, so the candidate list is canonical
    /// and the draw — like everything else under the token discipline — is a
    /// pure function of the virtual-time history and the seed.
    fn tie_grant(&mut self, min: Key) -> usize {
        let mut cands: Vec<usize> = Vec::new();
        while let Some(&std::cmp::Reverse((key, rank))) = self.heap.peek() {
            if key != min {
                break;
            }
            self.heap.pop();
            if matches!(self.procs[rank], PState::Parked { key: cur } if Key(cur) == min)
                && !cands.contains(&rank)
            {
                cands.push(rank);
            }
        }
        for &rank in &cands {
            self.heap.push(std::cmp::Reverse((min, rank)));
        }
        self.tie.pick(&cands)
    }
}

/// Render the wait graph of a deadlocked cluster: every process's scheduler
/// state, the filter each blocked receiver is waiting on, and the messages
/// sitting undeliverable in its mailbox.
pub(crate) fn wait_graph(
    procs: &[PState],
    mailboxes: &[std::collections::VecDeque<Message>],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "virtual-time deadlock: every process is blocked with no deliverable message\n",
    );
    for (rank, p) in procs.iter().enumerate() {
        match p {
            PState::RecvBlocked { src, tag, clock } => {
                let queued: Vec<(usize, Tag, f64)> = mailboxes[rank]
                    .iter()
                    .map(|m| (m.src, m.tag, m.arrival))
                    .collect();
                let _ = writeln!(
                    out,
                    "  process {rank}: blocked at t={clock:.6} waiting for src={src:?} tag={tag:?}; \
                     queued (src, tag, arrival): {queued:?}"
                );
            }
            PState::Finished => {
                let _ = writeln!(out, "  process {rank}: finished");
            }
            other => {
                let _ = writeln!(out, "  process {rank}: {other:?}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_minimum_key() {
        let procs = vec![
            PState::Parked { key: 2.0 },
            PState::Parked { key: 1.0 },
            PState::Parked { key: 3.0 },
        ];
        assert_eq!(choose(&procs), Decision::Grant(1));
    }

    #[test]
    fn ties_break_by_rank() {
        let procs = vec![PState::Parked { key: 1.0 }, PState::Parked { key: 1.0 }];
        assert_eq!(choose(&procs), Decision::Grant(0));
    }

    #[test]
    fn waits_while_anyone_runs() {
        let procs = vec![PState::Parked { key: 0.0 }, PState::Running];
        assert_eq!(choose(&procs), Decision::Wait);
    }

    #[test]
    fn blocked_processes_are_not_runnable() {
        let procs = vec![
            PState::RecvBlocked {
                src: None,
                tag: None,
                clock: 0.0,
            },
            PState::Parked { key: 9.0 },
        ];
        assert_eq!(choose(&procs), Decision::Grant(1));
    }

    #[test]
    fn all_blocked_is_a_deadlock() {
        let procs = vec![
            PState::RecvBlocked {
                src: Some(1),
                tag: Some(7),
                clock: 1.5,
            },
            PState::Finished,
        ];
        assert_eq!(choose(&procs), Decision::Deadlock);
    }

    #[test]
    fn all_finished_is_done() {
        assert_eq!(
            choose(&[PState::Finished, PState::Finished]),
            Decision::AllDone
        );
    }

    #[test]
    fn arbiter_tracks_the_reference_scan_through_random_transitions() {
        // Drive an Arbiter through a long pseudo-random transition sequence
        // and require its decision to equal the O(n) reference scan at every
        // step (release builds included — this is the release-mode version
        // of the debug_assert in `decide`).
        let n = 5;
        let mut arb = Arbiter::new(n);
        // lint:allow(prng): seeded test driver, same sequence every run
        let mut rng = crate::fault::SplitMix64::seeded(0x5eed);
        let mut next = || rng.next_u64() >> 33;
        for step in 0..4000 {
            let rank = next() as usize % n;
            let state = match next() % 4 {
                0 => PState::Running,
                1 => PState::Parked {
                    key: (next() % 16) as f64 * 0.25,
                },
                2 => PState::RecvBlocked {
                    src: None,
                    tag: None,
                    clock: 0.0,
                },
                _ => PState::Finished,
            };
            arb.set(rank, state);
            assert_eq!(
                arb.decide(),
                choose(arb.states()),
                "divergence at step {step}"
            );
        }
    }

    #[test]
    fn arbiter_discards_stale_entries_and_grants_the_new_minimum() {
        let mut arb = Arbiter::new(3);
        arb.set(0, PState::Parked { key: 1.0 });
        arb.set(1, PState::Parked { key: 2.0 });
        arb.set(2, PState::Parked { key: 3.0 });
        assert_eq!(arb.decide(), Decision::Grant(0));
        // Re-park process 0 *behind* the others: its old key-1.0 entry is
        // stale and must not win again.
        arb.set(0, PState::Parked { key: 9.0 });
        assert_eq!(arb.decide(), Decision::Grant(1));
        arb.set(1, PState::Finished);
        assert_eq!(arb.decide(), Decision::Grant(2));
        arb.set(2, PState::Running);
        assert_eq!(arb.decide(), Decision::Wait);
    }

    #[test]
    fn seed_zero_arbiter_is_exactly_rank_order() {
        // `with_seed(n, 0, _)` must be indistinguishable from `new(n)`:
        // identical grants on identical transition sequences, zero draws.
        let n = 4;
        let mut plain = Arbiter::new(n);
        let mut seeded = Arbiter::with_seed(n, 0, None);
        // lint:allow(prng): seeded test driver, same sequence every run
        let mut rng = crate::fault::SplitMix64::seeded(7);
        for _ in 0..2000 {
            let rank = rng.next_u64() as usize % n;
            let state = match rng.next_u64() % 3 {
                0 => PState::Running,
                1 => PState::Parked {
                    key: (rng.next_u64() % 4) as f64 * 0.5,
                },
                _ => PState::Finished,
            };
            plain.set(rank, state);
            seeded.set(rank, state);
            assert_eq!(plain.decide(), seeded.decide());
        }
        assert_eq!(seeded.tie_draws(), 0);
    }

    #[test]
    fn seeded_grant_is_always_a_minimum_key_candidate() {
        // Under any nonzero seed the grant must still be one of the ranks
        // parked at the reference scan's minimum key — a different legal
        // schedule, never an illegal one.
        for seed in 1..6u64 {
            let n = 5;
            let mut arb = Arbiter::with_seed(n, seed, None);
            // lint:allow(prng): seeded test driver, same sequence every run
            let mut rng = crate::fault::SplitMix64::seeded(seed ^ 0xabcd);
            for step in 0..2000 {
                let rank = rng.next_u64() as usize % n;
                let state = match rng.next_u64() % 4 {
                    0 => PState::Running,
                    1 => PState::Parked {
                        // Few distinct keys force frequent ties.
                        key: (rng.next_u64() % 3) as f64 * 0.25,
                    },
                    2 => PState::RecvBlocked {
                        src: None,
                        tag: None,
                        clock: 0.0,
                    },
                    _ => PState::Finished,
                };
                arb.set(rank, state);
                let decision = arb.decide();
                let reference = choose(arb.states());
                match (decision, reference) {
                    (Decision::Grant(got), Decision::Grant(want)) => {
                        let min = match arb.state(want) {
                            PState::Parked { key } => key,
                            other => panic!("reference grant not parked: {other:?}"),
                        };
                        match arb.state(got) {
                            PState::Parked { key } if key.total_cmp(&min).is_eq() => {}
                            other => panic!(
                                "seed {seed} step {step}: granted {got} in {other:?}, min {min}"
                            ),
                        }
                    }
                    (got, want) => assert_eq!(got, want, "seed {seed} step {step}"),
                }
            }
        }
    }

    #[test]
    fn seeded_ties_diverge_from_rank_order_and_replay_identically() {
        // A tie over all ranks: seed 0 grants rank 0; some nonzero seed must
        // grant someone else (otherwise the knob does nothing), and the same
        // seed must pick the same rank on a fresh arbiter (replayability).
        let grant_of = |seed: u64| {
            let mut arb = Arbiter::with_seed(6, seed, None);
            for r in 0..6 {
                arb.set(r, PState::Parked { key: 1.0 });
            }
            match arb.decide() {
                Decision::Grant(r) => r,
                other => panic!("expected a grant, got {other:?}"),
            }
        };
        assert_eq!(grant_of(0), 0);
        assert!(
            (1..20).any(|s| grant_of(s) != 0),
            "no seed in 1..20 ever deviated from rank order on a 6-way tie"
        );
        for seed in 1..20 {
            assert_eq!(grant_of(seed), grant_of(seed), "seed {seed} not replayable");
        }
    }

    #[test]
    fn tie_limit_zero_is_rank_order() {
        let mut arb = Arbiter::with_seed(4, 99, Some(0));
        for r in 0..4 {
            arb.set(r, PState::Parked { key: 2.0 });
        }
        assert_eq!(arb.decide(), Decision::Grant(0));
        assert_eq!(arb.tie_draws(), 0);
    }

    #[test]
    fn wait_graph_names_the_blocked_filter() {
        let procs = vec![PState::RecvBlocked {
            src: Some(3),
            tag: Some(9),
            clock: 0.25,
        }];
        let graph = wait_graph(&procs, &[std::collections::VecDeque::new()]);
        assert!(graph.contains("process 0"));
        assert!(graph.contains("src=Some(3)"));
        assert!(graph.contains("tag=Some(9)"));
    }
}

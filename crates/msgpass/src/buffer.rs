//! Typed pack/unpack buffers, mirroring PVM's `pvm_pk*` / `pvm_upk*` calls.
//!
//! PVM pack routines take the beginning of a user data structure, the number
//! of items, and a stride; unpack calls must match the pack calls in type and
//! count.  The buffers here behave the same way: values are appended in
//! little-endian order by the pack calls and consumed in order by the unpack
//! calls.  A mismatched unpack panics, which mirrors the programming error
//! the PVM manual warns about.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A buffer being filled by pack calls before a send.
#[derive(Debug, Default)]
pub struct SendBuffer {
    data: BytesMut,
}

impl SendBuffer {
    /// An empty send buffer.
    pub fn new() -> Self {
        SendBuffer {
            data: BytesMut::new(),
        }
    }

    /// Number of packed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been packed yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pack a slice of `f64` values.
    pub fn pack_f64(&mut self, vals: &[f64]) {
        self.data.reserve(vals.len() * 8);
        for v in vals {
            self.data.put_f64_le(*v);
        }
    }

    /// Pack every `stride`-th `f64` starting at index 0 (PVM stride packing).
    pub fn pack_f64_strided(&mut self, vals: &[f64], count: usize, stride: usize) {
        assert!(stride >= 1, "stride must be at least 1");
        self.data.reserve(count * 8);
        let mut idx = 0usize;
        for _ in 0..count {
            self.data.put_f64_le(vals[idx]);
            idx += stride;
        }
    }

    /// Pack a slice of `f32` values.
    pub fn pack_f32(&mut self, vals: &[f32]) {
        self.data.reserve(vals.len() * 4);
        for v in vals {
            self.data.put_f32_le(*v);
        }
    }

    /// Pack a slice of `i64` values.
    pub fn pack_i64(&mut self, vals: &[i64]) {
        self.data.reserve(vals.len() * 8);
        for v in vals {
            self.data.put_i64_le(*v);
        }
    }

    /// Pack a slice of `i32` values.
    pub fn pack_i32(&mut self, vals: &[i32]) {
        self.data.reserve(vals.len() * 4);
        for v in vals {
            self.data.put_i32_le(*v);
        }
    }

    /// Pack a slice of `u32` values.
    pub fn pack_u32(&mut self, vals: &[u32]) {
        self.data.reserve(vals.len() * 4);
        for v in vals {
            self.data.put_u32_le(*v);
        }
    }

    /// Pack a slice of `u64` values (used for sizes and indices).
    pub fn pack_u64(&mut self, vals: &[u64]) {
        self.data.reserve(vals.len() * 8);
        for v in vals {
            self.data.put_u64_le(*v);
        }
    }

    /// Pack raw bytes.
    pub fn pack_bytes(&mut self, vals: &[u8]) {
        self.data.extend_from_slice(vals);
    }

    /// Freeze into an immutable payload for the transport layer.
    pub fn into_payload(self) -> Bytes {
        self.data.freeze()
    }
}

/// A received message being consumed by unpack calls.
#[derive(Debug)]
pub struct RecvBuffer {
    src: usize,
    tag: u32,
    data: Bytes,
}

impl RecvBuffer {
    /// Wrap a received payload.
    pub fn new(src: usize, tag: u32, data: Bytes) -> Self {
        RecvBuffer { src, tag, data }
    }

    /// Rank of the sending process.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Tag of the message.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Bytes not yet unpacked.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// Unpack `n` `f64` values.
    pub fn unpack_f64(&mut self, n: usize) -> Vec<f64> {
        self.check(n * 8, "f64");
        (0..n).map(|_| self.data.get_f64_le()).collect()
    }

    /// Unpack `n` `f64` values into `out[0], out[stride], out[2*stride], ...`.
    pub fn unpack_f64_strided(&mut self, out: &mut [f64], n: usize, stride: usize) {
        assert!(stride >= 1, "stride must be at least 1");
        self.check(n * 8, "f64");
        let mut idx = 0usize;
        for _ in 0..n {
            out[idx] = self.data.get_f64_le();
            idx += stride;
        }
    }

    /// Unpack `n` `f32` values.
    pub fn unpack_f32(&mut self, n: usize) -> Vec<f32> {
        self.check(n * 4, "f32");
        (0..n).map(|_| self.data.get_f32_le()).collect()
    }

    /// Unpack `n` `i64` values.
    pub fn unpack_i64(&mut self, n: usize) -> Vec<i64> {
        self.check(n * 8, "i64");
        (0..n).map(|_| self.data.get_i64_le()).collect()
    }

    /// Unpack `n` `i32` values.
    pub fn unpack_i32(&mut self, n: usize) -> Vec<i32> {
        self.check(n * 4, "i32");
        (0..n).map(|_| self.data.get_i32_le()).collect()
    }

    /// Unpack `n` `u32` values.
    pub fn unpack_u32(&mut self, n: usize) -> Vec<u32> {
        self.check(n * 4, "u32");
        (0..n).map(|_| self.data.get_u32_le()).collect()
    }

    /// Unpack `n` `u64` values.
    pub fn unpack_u64(&mut self, n: usize) -> Vec<u64> {
        self.check(n * 8, "u64");
        (0..n).map(|_| self.data.get_u64_le()).collect()
    }

    /// Unpack `n` raw bytes.
    pub fn unpack_bytes(&mut self, n: usize) -> Vec<u8> {
        self.check(n, "u8");
        let mut out = vec![0u8; n];
        self.data.copy_to_slice(&mut out);
        out
    }

    fn check(&self, need: usize, ty: &str) {
        assert!(
            self.data.len() >= need,
            "unpack of {need} bytes of {ty} exceeds the {} bytes remaining \
             (unpack calls must match the pack calls of the sender)",
            self.data.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut b = SendBuffer::new();
        b.pack_i32(&[-1, 2, 3]);
        b.pack_f64(&[1.5, -2.5]);
        b.pack_u64(&[7]);
        b.pack_bytes(&[9, 8, 7]);
        b.pack_i64(&[-100]);
        b.pack_u32(&[42]);
        b.pack_f32(&[0.25]);
        let mut r = RecvBuffer::new(0, 0, b.into_payload());
        assert_eq!(r.unpack_i32(3), vec![-1, 2, 3]);
        assert_eq!(r.unpack_f64(2), vec![1.5, -2.5]);
        assert_eq!(r.unpack_u64(1), vec![7]);
        assert_eq!(r.unpack_bytes(3), vec![9, 8, 7]);
        assert_eq!(r.unpack_i64(1), vec![-100]);
        assert_eq!(r.unpack_u32(1), vec![42]);
        assert_eq!(r.unpack_f32(1), vec![0.25]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn strided_pack_and_unpack() {
        // Pack every 3rd element of a molecule-like record array.
        let records = vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0];
        let mut b = SendBuffer::new();
        b.pack_f64_strided(&records, 3, 3);
        assert_eq!(b.len(), 24);
        let mut r = RecvBuffer::new(0, 0, b.into_payload());
        let mut out = vec![0.0; 9];
        r.unpack_f64_strided(&mut out, 3, 3);
        assert_eq!(out, vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "unpack")]
    fn mismatched_unpack_panics() {
        let mut b = SendBuffer::new();
        b.pack_i32(&[1]);
        let mut r = RecvBuffer::new(0, 0, b.into_payload());
        r.unpack_f64(1);
    }

    #[test]
    fn empty_buffer_has_no_bytes() {
        let b = SendBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}

//! The PVM process interface: sends, receives, and user-level statistics.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::COPY_BANDWIDTH;
use cluster::{Proc, SpanCat};
use std::cell::RefCell;

/// User-level communication statistics, the quantities Table 2 of the paper
/// reports for the PVM programs: number of user messages and user data bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UserStats {
    /// User-level messages sent (one per `send`, one per destination for
    /// `mcast`/`bcast`, as PVM counts them).
    pub messages: u64,
    /// User data bytes sent.
    pub bytes: u64,
}

/// A PVM endpoint bound to one simulated process.
pub struct Pvm<'a> {
    proc: &'a Proc,
    stats: RefCell<UserStats>,
}

impl<'a> Pvm<'a> {
    /// Create the PVM endpoint for this process.
    pub fn new(proc: &'a Proc) -> Self {
        Pvm {
            proc,
            stats: RefCell::new(UserStats::default()),
        }
    }

    /// Rank of this process.
    pub fn id(&self) -> usize {
        self.proc.id()
    }

    /// Number of processes in the virtual machine.
    pub fn nprocs(&self) -> usize {
        self.proc.nprocs()
    }

    /// The underlying cluster process handle.
    pub fn proc(&self) -> &Proc {
        self.proc
    }

    /// A fresh, empty send buffer (`pvm_initsend`).
    pub fn new_buffer(&self) -> SendBuffer {
        SendBuffer::new()
    }

    /// User-level statistics accumulated so far.
    pub fn user_stats(&self) -> UserStats {
        *self.stats.borrow()
    }

    /// Non-blocking send of the packed buffer to `dst` with tag `tag`
    /// (`pvm_send`).  Charges the pack copy cost to the caller.
    pub fn send(&self, dst: usize, tag: u32, buf: SendBuffer) {
        let payload = buf.into_payload();
        self.charge_copy(payload.len());
        self.account(payload.len());
        self.proc.send(dst, tag, payload);
    }

    /// Multicast the packed buffer to each process in `dsts` (`pvm_mcast`).
    pub fn mcast(&self, dsts: &[usize], tag: u32, buf: SendBuffer) {
        let payload = buf.into_payload();
        self.charge_copy(payload.len());
        for &dst in dsts {
            assert_ne!(dst, self.id(), "multicast to self is not meaningful");
            self.account(payload.len());
            self.proc.send(dst, tag, payload.clone());
        }
    }

    /// Broadcast the packed buffer to every other process (`pvm_bcast` on the
    /// group of all processes).
    pub fn bcast(&self, tag: u32, buf: SendBuffer) {
        let dsts: Vec<usize> = (0..self.nprocs()).filter(|&d| d != self.id()).collect();
        self.mcast(&dsts, tag, buf);
    }

    /// Blocking receive (`pvm_recv`): waits for a message matching `src`
    /// (any source if `None`) and `tag`, and returns its receive buffer.
    pub fn recv(&self, src: Option<usize>, tag: u32) -> RecvBuffer {
        // The blocking receive (wait plus unpack copy) is the only
        // non-compute component of a PVM program's time breakdown.
        self.proc.span_begin(SpanCat::RecvWait, tag as u64);
        let m = self.proc.recv(src, tag);
        self.charge_copy(m.payload.len());
        self.proc.span_end(SpanCat::RecvWait);
        RecvBuffer::new(m.src, m.tag, m.payload)
    }

    /// Blocking receive with a wildcard tag (`pvm_recv(src, -1)`): waits for
    /// the next message from `src` (any source if `None`) whatever its tag.
    /// Dispatch on [`RecvBuffer::tag`] afterwards.
    ///
    /// This is the idiomatic shape for "wait for either a task or a
    /// shutdown" protocols; polling each tag in a busy loop instead would
    /// never advance the caller's virtual clock, so under deterministic
    /// virtual-time scheduling it could spin forever on a reply that is
    /// still in the caller's virtual future.
    pub fn recv_any(&self, src: Option<usize>) -> RecvBuffer {
        self.proc.span_begin(SpanCat::RecvWait, u64::from(u32::MAX));
        let m = self.proc.recv_match(src, None);
        self.charge_copy(m.payload.len());
        self.proc.span_end(SpanCat::RecvWait);
        RecvBuffer::new(m.src, m.tag, m.payload)
    }

    /// Non-blocking receive (`pvm_nrecv`): returns `None` if no matching
    /// message has *arrived* by the caller's current virtual time.
    ///
    /// A queued message whose arrival is still in the caller's virtual
    /// future stays invisible (the causality gate of the transport): a
    /// process cannot react to data "before" it arrived.
    pub fn nrecv(&self, src: Option<usize>, tag: u32) -> Option<RecvBuffer> {
        let m = self.proc.try_recv(src, tag)?;
        self.charge_copy(m.payload.len());
        Some(RecvBuffer::new(m.src, m.tag, m.payload))
    }

    fn charge_copy(&self, bytes: usize) {
        if bytes > 0 {
            self.proc.compute(bytes as f64 / COPY_BANDWIDTH);
        }
    }

    fn account(&self, bytes: usize) {
        let mut st = self.stats.borrow_mut();
        st.messages += 1;
        st.bytes += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig};

    #[test]
    fn send_recv_round_trip() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            let pvm = Pvm::new(p);
            if p.id() == 0 {
                let mut b = pvm.new_buffer();
                b.pack_i32(&[10, 20, 30]);
                pvm.send(1, 1, b);
                pvm.user_stats()
            } else {
                let mut r = pvm.recv(Some(0), 1);
                assert_eq!(r.unpack_i32(3), vec![10, 20, 30]);
                pvm.user_stats()
            }
        });
        assert_eq!(rep.results[0].messages, 1);
        assert_eq!(rep.results[0].bytes, 12);
        // The receiver sent nothing.
        assert_eq!(rep.results[1].messages, 0);
    }

    #[test]
    fn bcast_reaches_every_other_process() {
        let n = 5;
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), |p| {
            let pvm = Pvm::new(p);
            if p.id() == 0 {
                let mut b = pvm.new_buffer();
                b.pack_u64(&[99]);
                pvm.bcast(7, b);
                99
            } else {
                pvm.recv(Some(0), 7).unpack_u64(1)[0]
            }
        });
        assert!(rep.results.iter().all(|&v| v == 99));
        // PVM counts one user message per destination.
        assert_eq!(rep.stats[0].messages_sent, (n - 1) as u64);
    }

    #[test]
    fn mcast_to_subset_only() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(4), |p| {
            let pvm = Pvm::new(p);
            if p.id() == 0 {
                let mut b = pvm.new_buffer();
                b.pack_u32(&[5]);
                pvm.mcast(&[2, 3], 9, b);
                true
            } else if p.id() >= 2 {
                pvm.recv(Some(0), 9).unpack_u32(1)[0] == 5
            } else {
                // Process 1 must not receive anything.
                pvm.nrecv(Some(0), 9).is_none()
            }
        });
        assert!(rep.results.iter().all(|&ok| ok));
    }

    #[test]
    fn nrecv_polling_loop_eventually_succeeds() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            let pvm = Pvm::new(p);
            if p.id() == 0 {
                p.compute(0.01);
                let mut b = pvm.new_buffer();
                b.pack_i32(&[1]);
                pvm.send(1, 3, b);
                1
            } else {
                // Poll with nrecv while doing "useful work", then block.
                let mut polls = 0;
                loop {
                    if let Some(mut r) = pvm.nrecv(Some(0), 3) {
                        return r.unpack_i32(1)[0];
                    }
                    polls += 1;
                    if polls > 1000 {
                        let mut r = pvm.recv(Some(0), 3);
                        return r.unpack_i32(1)[0];
                    }
                }
            }
        });
        assert_eq!(rep.results[1], 1);
    }

    #[test]
    fn packing_charges_copy_time() {
        let rep = Cluster::run(ClusterConfig::ideal(2), |p| {
            let pvm = Pvm::new(p);
            if p.id() == 0 {
                let mut b = pvm.new_buffer();
                b.pack_bytes(&vec![0u8; 4_000_000]);
                pvm.send(1, 1, b);
            } else {
                pvm.recv(Some(0), 1);
            }
            p.clock()
        });
        // 4 MB at 40 MB/s is 0.1 s of copy time on the sender.
        assert!(rep.results[0] >= 0.09, "sender clock {}", rep.results[0]);
    }
}

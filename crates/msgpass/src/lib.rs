//! A PVM-style message passing library on top of the [`cluster`] substrate.
//!
//! The paper's message-passing programs use PVM 3.3: user data is *packed*
//! into a send buffer, dispatched with a non-blocking send (point-to-point,
//! multicast, or broadcast), received into a receive buffer with a blocking
//! or non-blocking receive, and *unpacked* back into application data
//! structures.  This crate reproduces that interface:
//!
//! * [`SendBuffer`] / [`RecvBuffer`] — typed pack/unpack with optional stride,
//! * [`Pvm::send`], [`Pvm::mcast`], [`Pvm::bcast`] — non-blocking sends,
//! * [`Pvm::recv`] / [`Pvm::nrecv`] — blocking / non-blocking receives,
//! * user-level message and byte counters (the quantities the paper reports
//!   for PVM in Table 2), independent of the transport-level datagram counts
//!   kept by the cluster.
//!
//! As in the paper's experiments, processes talk over direct connections and
//! XDR conversion is disabled (all simulated hosts are identical), so packing
//! is a plain memory copy charged at a calibrated copy bandwidth.
//!
//! # Example
//!
//! ```
//! use cluster::{Cluster, ClusterConfig};
//! use msgpass::Pvm;
//!
//! let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
//!     let pvm = Pvm::new(p);
//!     if p.id() == 0 {
//!         let mut buf = pvm.new_buffer();
//!         buf.pack_f64(&[1.0, 2.0, 3.0]);
//!         pvm.send(1, 42, buf);
//!         0.0
//!     } else {
//!         let mut m = pvm.recv(Some(0), 42);
//!         m.unpack_f64(3).iter().sum()
//!     }
//! });
//! assert_eq!(rep.results[1], 6.0);
//! ```

#![deny(missing_docs)]

pub mod buffer;
pub mod process;

pub use buffer::{RecvBuffer, SendBuffer};
pub use process::{Pvm, UserStats};

/// Memory-copy bandwidth used to charge pack/unpack time (bytes per second).
/// Calibrated to an early-90s workstation memory system (~40 MB/s copies).
pub const COPY_BANDWIDTH: f64 = 40.0e6;

//! Repository automation tasks.  The only task so far is `lint`: a static
//! source analysis enforcing the determinism discipline the simulation
//! depends on, run by the CI lint job next to rustfmt and clippy.
//!
//! ```text
//! cargo run -p xtask -- lint            # lint the workspace
//! cargo run -p xtask -- lint --root DIR # lint another tree (used by CI's
//!                                       # seeded-violation check)
//! ```
//!
//! ## Rules
//!
//! **Determinism hazards** (`HashMap`/`HashSet` with their hash-ordered
//! iteration, `Instant::now`, `SystemTime`, `thread_rng`/`rand::`) are
//! forbidden outright in the simulation crates `crates/core`,
//! `crates/cluster` and `crates/msgpass`: every byte of their output must be
//! a pure function of the configuration, so there is no justifiable use and
//! no allow marker is honoured there.
//!
//! In the host-side crates `crates/apps` and `crates/bench` the hash
//! containers and RNG rules still apply (checksums and tables must be
//! byte-stable), but *wall-clock reads* are legitimate when they measure
//! this machine's own execution (benchmark throughput, `--bench-out`
//! timing).  Those sites must carry a justification marker on the same line
//! or in the comment block immediately above:
//!
//! ```text
//! // lint:allow(wall-clock): measures this machine's throughput
//! let started = Instant::now();
//! ```
//!
//! **Annotated unsynchronized reads** (`*_unsync(...)` heap accessors, the
//! race detector's benign-race escape hatch) must likewise carry a
//! `lint:allow(unsync-read): <why the race is harmless>` marker at every
//! call site in the host crates.
//!
//! **Thread confinement**: OS threads decide nothing in this engine — every
//! simulated byte is fixed before any interleaving can observe it — and
//! that only stays true while threading is confined to the executor layer:
//! `crates/cluster/src/net.rs` (the per-island window workers),
//! `crates/cluster/src/sched.rs` (the arbiter) and `crates/bench/src/exec.rs`
//! (the host-side fan).  Spawn tokens (`std::thread`, `thread::spawn`,
//! `thread::scope`, `rayon`) anywhere else in the linted crates need a
//! `lint:allow(threads): <reason>` marker, so a future PR cannot quietly
//! grow a thread that races the determinism discipline.
//!
//! **Hook discipline**: `impl ConsistencyProtocol for` is permitted only
//! under `crates/core/src/protocol/` — backends live behind the trait, and
//! nothing outside the protocol layer may reimplement the hook surface.
//!
//! **PRNG confinement**: the deterministic generator `SplitMix64` lives in
//! `crates/cluster/src/fault.rs`, where every stream is split from the
//! fault plan's root seed so that (scenario, seed) pins every draw.  Any
//! use of the token outside that file — simulation and host crates alike —
//! needs a `lint:allow(prng): <reason>` marker, so ad-hoc generators can't
//! grow randomness outside the seed discipline.  (Unlike `thread_rng`,
//! `SplitMix64` is deterministic, so justified uses exist — test drivers
//! feeding pseudo-random transition sequences — and the marker is honoured
//! even in the simulation crates.)
//!
//! A marker must carry a non-empty reason after its colon; a bare
//! `lint:allow(wall-clock):` is itself a finding.  Doc and line comments
//! are stripped before token matching, so prose *about* a hazard never
//! trips the linter.

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose output must be a pure function of the configuration: no
/// hazard is justifiable, no allow marker is honoured.
const SIM_CRATES: [&str; 3] = ["crates/core", "crates/cluster", "crates/msgpass"];

/// Host-side crates: hazards still apply, but wall-clock reads (and
/// annotated unsynchronized reads) are allowed with a justification marker.
const HOST_CRATES: [&str; 2] = ["crates/apps", "crates/bench"];

/// One rule violation at one source line.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Finding {
    file: PathBuf,
    line: usize,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.msg)
    }
}

/// The hazard tokens and the marker rule (if any) that can justify them in
/// the host crates.  In simulation crates every one is a hard error.
const HAZARDS: [(&str, Option<&str>); 6] = [
    ("HashMap", None),
    ("HashSet", None),
    ("Instant::now", Some("wall-clock")),
    ("SystemTime", Some("wall-clock")),
    ("thread_rng", None),
    ("rand::", None),
];

/// The executor layer: the only files where spawning OS threads is
/// legitimate without a marker.  Everywhere else a spawn token needs
/// `lint:allow(threads): <reason>`.
const THREAD_FILES: [&str; 3] = [
    "crates/cluster/src/net.rs",
    "crates/cluster/src/sched.rs",
    "crates/bench/src/exec.rs",
];

/// Tokens that spawn (or name machinery that spawns) OS threads.  Ordered
/// longest-prefix first so the reported token is the most specific match.
const THREAD_TOKENS: [&str; 4] = ["std::thread", "thread::spawn", "thread::scope", "rayon"];

fn is_under(rel: &Path, roots: &[&str]) -> bool {
    roots.iter().any(|r| rel.starts_with(r))
}

/// The line with any `//` comment removed, so tokens in prose (doc
/// comments, trailing notes) are never matched.  Cheap and slightly
/// over-eager (a `//` inside a string literal also truncates), which only
/// makes the linter more lenient, never false-positive.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// True if line `idx` (0-based) is justified for `rule`: a
/// `lint:allow(<rule>): <non-empty reason>` marker on the line itself or in
/// the contiguous comment block immediately above it.
fn has_marker(lines: &[&str], idx: usize, rule: &str) -> bool {
    let tag = format!("lint:allow({rule}):");
    let carries = |line: &str| {
        line.find(&tag)
            .map(|i| !line[i + tag.len()..].trim().is_empty())
            .unwrap_or(false)
    };
    if carries(lines[idx]) {
        return true;
    }
    let mut k = idx;
    while k > 0 && lines[k - 1].trim_start().starts_with("//") {
        k -= 1;
        if carries(lines[k]) {
            return true;
        }
    }
    false
}

/// Lint one file's contents; `rel` is its path relative to the tree root.
fn lint_source(rel: &Path, text: &str, findings: &mut Vec<Finding>) {
    let sim = is_under(rel, &SIM_CRATES);
    let host = is_under(rel, &HOST_CRATES);
    let in_protocol_layer = rel.starts_with("crates/core/src/protocol");
    let lines: Vec<&str> = text.lines().collect();
    let mut push = |line: usize, msg: String| {
        findings.push(Finding {
            file: rel.to_path_buf(),
            line: line + 1,
            msg,
        })
    };
    for (i, &raw) in lines.iter().enumerate() {
        let code = code_part(raw);
        if (sim || host) && !code.trim().is_empty() {
            for (token, marker) in HAZARDS {
                if !code.contains(token) {
                    continue;
                }
                match marker {
                    Some(rule) if host => {
                        if !has_marker(&lines, i, rule) {
                            push(
                                i,
                                format!(
                                    "`{token}` needs a `lint:allow({rule}): <reason>` marker \
                                     (same line or the comment block above)"
                                ),
                            );
                        }
                    }
                    _ => push(
                        i,
                        format!(
                            "determinism hazard `{token}` is forbidden in {} crates",
                            if sim { "simulation" } else { "host" }
                        ),
                    ),
                }
            }
            if code.contains("SplitMix64")
                && rel != Path::new("crates/cluster/src/fault.rs")
                && !has_marker(&lines, i, "prng")
            {
                push(
                    i,
                    "`SplitMix64` outside crates/cluster/src/fault.rs needs a \
                     `lint:allow(prng): <reason>` marker: seeded randomness is confined \
                     to the fault plan's split streams"
                        .to_string(),
                );
            }
            if !THREAD_FILES.iter().any(|f| rel == Path::new(f)) {
                // One finding per line even when several tokens overlap
                // (`thread::spawn` is a substring of `std::thread::spawn`).
                if let Some(token) = THREAD_TOKENS.iter().find(|t| code.contains(*t)) {
                    if !has_marker(&lines, i, "threads") {
                        push(
                            i,
                            format!(
                                "`{token}` spawns OS threads outside the executor layer \
                                 ({}); move the threading there or justify with a \
                                 `lint:allow(threads): <reason>` marker",
                                THREAD_FILES.join(", ")
                            ),
                        );
                    }
                }
            }
            if host && code.contains("_unsync(") && !has_marker(&lines, i, "unsync-read") {
                push(
                    i,
                    "annotated unsynchronized read needs a `lint:allow(unsync-read): <reason>` \
                     marker (same line or the comment block above)"
                        .to_string(),
                );
            }
        }
        if code.contains("ConsistencyProtocol for")
            && code.trim_start().starts_with("impl")
            && !in_protocol_layer
        {
            push(
                i,
                "`impl ConsistencyProtocol` outside crates/core/src/protocol/: protocol \
                 backends live behind the trait in the protocol layer only"
                    .to_string(),
            );
        }
    }
}

/// Every `.rs` file under the linted crate roots of `root`, lexicographically
/// sorted so the report (and CI diff of it) is deterministic.
fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for crate_root in SIM_CRATES.iter().chain(HOST_CRATES.iter()) {
        let dir = root.join(crate_root);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    Ok(out)
}

/// Lint the workspace tree at `root`, returning every finding sorted by
/// (file, line).
fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in rust_files(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        lint_source(&rel, &text, &mut findings);
    }
    findings.sort();
    Ok(findings)
}

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- lint [--root DIR]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        usage();
    }
    let root = match args.get(1).map(String::as_str) {
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask lives one level below the workspace root")
            .to_path_buf(),
        Some("--root") => match args.get(2) {
            Some(dir) if args.len() == 3 => PathBuf::from(dir),
            _ => usage(),
        },
        Some(_) => usage(),
    };
    let findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if findings.is_empty() {
        println!("xtask lint: clean ({} ok)", root.display());
        return;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("xtask lint: {} finding(s)", findings.len());
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch tree under the system temp dir, removed on drop.
    struct Tree(PathBuf);

    impl Tree {
        fn new(case: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("xtask-lint-{}-{case}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Tree(dir)
        }

        fn write(&self, rel: &str, text: &str) {
            let path = self.0.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }

        fn lint(&self) -> Vec<Finding> {
            lint_tree(&self.0).unwrap()
        }
    }

    impl Drop for Tree {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn hash_containers_are_forbidden_in_simulation_crates() {
        let t = Tree::new("sim-hash");
        t.write(
            "crates/core/src/bad.rs",
            "use std::collections::HashMap;\nfn f() { let _: HashSet<u32>; }\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].msg.contains("HashMap"));
        assert_eq!(f[0].line, 1);
        assert!(f[1].msg.contains("HashSet"));
    }

    #[test]
    fn wall_clock_in_sim_crates_has_no_marker_escape() {
        let t = Tree::new("sim-clock");
        t.write(
            "crates/msgpass/src/bad.rs",
            "// lint:allow(wall-clock): markers are not honoured here\n\
             fn f() { let _ = std::time::Instant::now(); }\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("forbidden in simulation crates"));
    }

    #[test]
    fn wall_clock_in_host_crates_wants_a_reasoned_marker() {
        let t = Tree::new("host-clock");
        t.write(
            "crates/bench/src/a.rs",
            "fn f() { let _ = Instant::now(); }\n",
        );
        t.write(
            "crates/bench/src/b.rs",
            "// lint:allow(wall-clock):\nfn f() { let _ = Instant::now(); }\n",
        );
        t.write(
            "crates/bench/src/c.rs",
            "// lint:allow(wall-clock): times this machine\nfn f() { let _ = Instant::now(); }\n",
        );
        t.write(
            "crates/bench/src/d.rs",
            "fn f() { let _ = Instant::now(); } // lint:allow(wall-clock): same-line form\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.file.ends_with("a.rs")), "unmarked site");
        assert!(f.iter().any(|f| f.file.ends_with("b.rs")), "empty reason");
    }

    #[test]
    fn comment_prose_about_hazards_is_ignored() {
        let t = Tree::new("prose");
        t.write(
            "crates/core/src/doc.rs",
            "/// Unlike a HashMap, a BTreeMap iterates deterministically.\n\
             // SystemTime would break replay.\nfn f() {}\n",
        );
        assert!(t.lint().is_empty());
    }

    #[test]
    fn unsync_reads_want_a_marker_in_host_crates() {
        let t = Tree::new("unsync");
        t.write(
            "crates/apps/src/a.rs",
            "fn f(t: &Tmk) { let _ = t.read_f64_unsync(0); }\n",
        );
        t.write(
            "crates/apps/src/b.rs",
            "fn f(t: &Tmk) {\n    // lint:allow(unsync-read): stale reads only weaken pruning\n    \
             // and the update re-checks under the lock.\n    let _ = t.read_f64_unsync(0);\n}\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].file.ends_with("a.rs"));
        assert!(f[0].msg.contains("unsync-read"));
    }

    #[test]
    fn splitmix_outside_the_fault_module_wants_a_prng_marker() {
        let t = Tree::new("prng");
        // Home of the generator: exempt.
        t.write(
            "crates/cluster/src/fault.rs",
            "pub struct SplitMix64 { state: u64 }\n",
        );
        // Unmarked use elsewhere, even in a sim crate: a finding.
        t.write(
            "crates/cluster/src/rogue.rs",
            "fn f() { let _ = crate::fault::SplitMix64::seeded(1); }\n",
        );
        // Marked use with a reason: fine, in sim and host crates alike.
        t.write(
            "crates/cluster/src/driver.rs",
            "// lint:allow(prng): deterministic test transition sequence\n\
             fn f() { let _ = crate::fault::SplitMix64::seeded(1); }\n",
        );
        t.write(
            "crates/bench/src/mixer.rs",
            "fn f() { let _ = cluster::SplitMix64::seeded(2); } \
             // lint:allow(prng): seeded, same-line form\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].file.ends_with("rogue.rs"));
        assert!(f[0].msg.contains("prng"));
    }

    #[test]
    fn thread_spawns_are_confined_to_the_executor_layer() {
        let t = Tree::new("threads");
        // The executor layer itself: exempt, no marker needed.
        t.write(
            "crates/cluster/src/net.rs",
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n",
        );
        t.write(
            "crates/cluster/src/sched.rs",
            "fn f() { let _ = std::thread::available_parallelism(); }\n",
        );
        t.write(
            "crates/bench/src/exec.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        // Rogue spawns elsewhere: findings, one per line, across every
        // spawn token.
        t.write(
            "crates/cluster/src/rogue.rs",
            "fn f() { std::thread::spawn(|| {}); }\nfn g() { rayon::join(|| {}, || {}); }\n",
        );
        t.write(
            "crates/core/src/rogue.rs",
            "use std::thread;\nfn f() { thread::scope(|s| { let _ = s; }); }\n",
        );
        // A marked site with a reason: honoured.
        t.write(
            "crates/cluster/src/justified.rs",
            "// lint:allow(threads): the cluster's own per-process threads\n\
             fn f() { std::thread::scope(|s| { let _ = s; }); }\n",
        );
        // An empty reason is itself a finding.
        t.write(
            "crates/cluster/src/bare.rs",
            "fn f() { std::thread::spawn(|| {}); } // lint:allow(threads):\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 5, "{f:#?}");
        assert!(f.iter().all(|f| f.msg.contains("executor layer")), "{f:#?}");
        assert!(f.iter().any(|f| f.file.ends_with("bare.rs")));
        assert_eq!(
            f.iter()
                .filter(|f| f.file.ends_with("cluster/src/rogue.rs"))
                .count(),
            2
        );
        assert_eq!(
            f.iter()
                .filter(|f| f.file.ends_with("core/src/rogue.rs"))
                .count(),
            2,
            "`use std::thread` and `thread::scope` are both spawn tokens"
        );
    }

    #[test]
    fn protocol_impls_outside_the_protocol_layer_are_flagged() {
        let t = Tree::new("hooks");
        t.write(
            "crates/core/src/protocol/mine.rs",
            "impl ConsistencyProtocol for Mine {}\n",
        );
        t.write(
            "crates/apps/src/rogue.rs",
            "impl ConsistencyProtocol for Rogue {}\n",
        );
        let f = t.lint();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].file.ends_with("rogue.rs"));
    }

    #[test]
    fn findings_are_sorted_by_file_then_line() {
        let t = Tree::new("sorted");
        t.write(
            "crates/core/src/z.rs",
            "fn f() { let _: HashMap<u32, u32>; }\n",
        );
        t.write(
            "crates/core/src/a.rs",
            "fn f() {}\nfn g() { let _: HashSet<u32>; }\nfn h() { thread_rng(); }\n",
        );
        let f = t.lint();
        let order: Vec<(String, usize)> = f
            .iter()
            .map(|f| (f.file.display().to_string(), f.line))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn the_real_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
        let f = lint_tree(root).unwrap();
        assert!(f.is_empty(), "lint findings in the tree: {f:#?}");
    }
}
